// Package gateway is the client-facing front door of a federated DIET
// deployment: it pools connections to the Master Agents, sticky-routes each
// service to one MA (so a service's estimates and models stay warm where its
// hierarchy lives), batches concurrent submissions of the same service into
// one finding phase, and sheds load with a typed ErrOverload once its
// bounded admission queue fills — the web-portal layer of PAPERS.md #5 in
// front of the multi-MA mesh of #1/#2.
//
// The HTTP JSON API it exposes (POST /api/v1/solve, GET /api/v1/status,
// plus /metrics, /statusz and /debug/pprof) speaks the versioned gwproto
// contract; diet.Client's WithGateway option is the in-process client of
// the same wire format.
package gateway

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diet"
	"repro/internal/gwproto"
	"repro/internal/metrics"
)

// ErrOverload re-exports the typed admission-control shed error so gateway
// callers need not import the wire package.
var ErrOverload = gwproto.ErrOverload

// Config configures a Gateway.
type Config struct {
	// Naming is the naming service address shared by the federation.
	Naming string
	// MAs names the Master Agents to pool over (at least one). Sticky
	// routing hashes each service name onto this list, so its order must
	// agree across gateway replicas for stickiness to hold fleet-wide.
	MAs []string
	// QueueCap bounds how many calls may be admitted (queued or running) at
	// once; further calls are shed with ErrOverload (default 256).
	QueueCap int
	// Workers bounds how many admitted calls run concurrently; the rest
	// wait in the admission queue (default 16).
	Workers int
	// TraceLevel is passed through to the pooled diet clients.
	TraceLevel int
	// Events is an optional monitoring sink shared by the pooled clients.
	Events diet.EventSink
	// Metrics is an optional Prometheus registry.
	Metrics *metrics.Registry
}

// finding is one in-flight finding phase that concurrent submissions of the
// same service share: the first caller (the leader) pays the MA round trip,
// later callers join as followers and reuse the ranked reply with rotated
// starting servers.
type finding struct {
	done   chan struct{}
	reply  *diet.SubmitReply
	err    error
	joined int
}

// Gateway is a running gateway instance. All methods are safe for
// concurrent use.
type Gateway struct {
	cfg     Config
	clients []*diet.Client // one pooled session per MA, index-aligned with cfg.MAs

	queue   chan struct{} // admission tokens: queued + running, cap QueueCap
	workers chan struct{} // concurrency tokens, cap Workers

	mu       sync.Mutex
	inflight map[string]*finding

	submitted atomic.Int64
	shed      atomic.Int64
	batched   atomic.Int64
	batches   atomic.Int64
	solved    atomic.Int64
	errors    atomic.Int64
	perMA     []maCounters

	metrics *gwMetrics // nil unless cfg.Metrics is set
}

// maCounters are one MA's slice of the gateway stats.
type maCounters struct {
	submitted atomic.Int64
	failed    atomic.Int64
}

// gwMetrics are the gateway's Prometheus instruments.
type gwMetrics struct {
	admitted    metrics.CounterVec
	shed        metrics.CounterVec
	batched     metrics.CounterVec
	solved      metrics.CounterVec
	errors      metrics.CounterVec
	queueDepth  metrics.GaugeVec
	admissionS  metrics.HistogramVec
	solveS      metrics.HistogramVec
	maSubmitted metrics.CounterVec
}

func newGwMetrics(reg *metrics.Registry) *gwMetrics {
	if reg == nil {
		return nil
	}
	return &gwMetrics{
		admitted: reg.NewCounter("dietgw_admitted_total",
			"calls admitted past the gateway's bounded queue"),
		shed: reg.NewCounter("dietgw_shed_total",
			"calls rejected with ErrOverload because the admission queue was full"),
		batched: reg.NewCounter("dietgw_batched_total",
			"calls that rode another call's finding phase instead of paying their own"),
		solved: reg.NewCounter("dietgw_solved_total",
			"calls completed successfully"),
		errors: reg.NewCounter("dietgw_errors_total",
			"admitted calls that failed"),
		queueDepth: reg.NewGauge("dietgw_queue_depth",
			"calls currently admitted (queued or running)"),
		admissionS: reg.NewHistogram("dietgw_admission_wait_seconds",
			"wait between admission and a worker slot", nil),
		solveS: reg.NewHistogram("dietgw_solve_seconds",
			"end-to-end gateway call time (admission to solved)", nil),
		maSubmitted: reg.NewCounter("dietgw_ma_submissions_total",
			"finding-phase submissions per upstream master agent", "ma"),
	}
}

// New connects a gateway to its Master Agents. Every MA must already be
// registered with naming — a gateway fronts a running federation, it does
// not boot one.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.MAs) == 0 {
		return nil, fmt.Errorf("gateway: needs at least one master agent")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Metrics == nil {
		// The gateway always carries instruments: its /metrics endpoint is
		// part of the API surface, not an opt-in.
		cfg.Metrics = metrics.NewRegistry()
	}
	g := &Gateway{
		cfg:      cfg,
		queue:    make(chan struct{}, cfg.QueueCap),
		workers:  make(chan struct{}, cfg.Workers),
		inflight: make(map[string]*finding),
		perMA:    make([]maCounters, len(cfg.MAs)),
		metrics:  newGwMetrics(cfg.Metrics),
	}
	for _, ma := range cfg.MAs {
		cl, err := diet.InitializeConfig(diet.ClientConfig{
			Naming: cfg.Naming, MAName: ma,
			TraceLevel: cfg.TraceLevel, Events: cfg.Events,
		})
		if err != nil {
			return nil, fmt.Errorf("gateway: connecting to MA %q: %w", ma, err)
		}
		g.clients = append(g.clients, cl)
	}
	return g, nil
}

// Close drops the pooled MA sessions.
func (g *Gateway) Close() {
	for _, cl := range g.clients {
		cl.Finalize()
	}
}

// route sticky-routes a service onto one MA: FNV-1a of the service name
// modulo the pool, so every submission of one service lands on the same MA
// (whose subtree then holds the service's warm models) while distinct
// services spread across the federation.
func (g *Gateway) route(service string) int {
	h := fnv.New32a()
	h.Write([]byte(service))
	return int(h.Sum32()) % len(g.clients)
}

// RouteMA reports which MA a service sticky-routes to (for tests and the
// status page).
func (g *Gateway) RouteMA(service string) string {
	return g.cfg.MAs[g.route(service)]
}

// admit passes the admission controller: a token from the bounded queue or
// an immediate ErrOverload, then a worker slot (this wait is the admission
// latency). The returned release frees both.
func (g *Gateway) admit() (func(), error) {
	select {
	case g.queue <- struct{}{}:
	default:
		g.shed.Add(1)
		if g.metrics != nil {
			g.metrics.shed.With().Inc()
		}
		return nil, fmt.Errorf("gateway: admission queue full (%d): %w", cap(g.queue), ErrOverload)
	}
	g.submitted.Add(1)
	if g.metrics != nil {
		g.metrics.admitted.With().Inc()
		g.metrics.queueDepth.With().Set(float64(len(g.queue)))
	}
	g.workers <- struct{}{}
	return func() {
		<-g.workers
		<-g.queue
		if g.metrics != nil {
			g.metrics.queueDepth.With().Set(float64(len(g.queue)))
		}
	}, nil
}

// findServers runs (or joins) the finding phase for a service. The reply is
// shared with every concurrent caller of the same service; rotate is this
// caller's batch position, used to fan the batch across the ranked list
// instead of piling it onto the top server.
func (g *Gateway) findServers(idx int, service string, work float64) (reply *diet.SubmitReply, rotate int, err error) {
	g.mu.Lock()
	if f, ok := g.inflight[service]; ok {
		f.joined++
		rotate = f.joined
		g.mu.Unlock()
		g.batched.Add(1)
		if g.metrics != nil {
			g.metrics.batched.With().Inc()
		}
		<-f.done
		return f.reply, rotate, f.err
	}
	f := &finding{done: make(chan struct{})}
	g.inflight[service] = f
	g.mu.Unlock()

	g.perMA[idx].submitted.Add(1)
	if g.metrics != nil {
		g.metrics.maSubmitted.With(g.cfg.MAs[idx]).Inc()
	}
	f.reply, _, f.err = g.clients[idx].Submit(service, work)
	if f.err != nil {
		g.perMA[idx].failed.Add(1)
	}

	g.mu.Lock()
	delete(g.inflight, service)
	if f.joined > 0 {
		g.batches.Add(1)
	}
	g.mu.Unlock()
	close(f.done)
	return f.reply, 0, f.err
}

// Solve runs one complete call through the gateway: admission control,
// sticky-routed (and possibly batched) finding, then the normal diet solve
// with failover, rotated by batch position. The returned admission duration
// is the time spent waiting for a worker slot.
func (g *Gateway) Solve(p *diet.Profile) (*diet.CallInfo, time.Duration, error) {
	t0 := time.Now()
	release, err := g.admit()
	if err != nil {
		return nil, 0, err
	}
	defer release()
	admission := time.Since(t0)
	if g.metrics != nil {
		g.metrics.admissionS.With().Observe(admission.Seconds())
	}

	idx := g.route(p.Service)
	reply, rotate, err := g.findServers(idx, p.Service, p.WorkGFlops)
	if err != nil {
		g.errors.Add(1)
		if g.metrics != nil {
			g.metrics.errors.With().Inc()
		}
		return nil, admission, fmt.Errorf("gateway: finding for %q failed: %w", p.Service, err)
	}
	info, err := g.clients[idx].Call(p, diet.WithWork(p.WorkGFlops), diet.WithServers(reply, rotate))
	if err != nil {
		g.errors.Add(1)
		if g.metrics != nil {
			g.metrics.errors.With().Inc()
		}
		return nil, admission, err
	}
	g.solved.Add(1)
	if g.metrics != nil {
		g.metrics.solved.With().Inc()
		g.metrics.solveS.With().Observe(time.Since(t0).Seconds())
	}
	return info, admission, nil
}

// Status snapshots the gateway counters in the wire schema.
func (g *Gateway) Status() gwproto.StatusReply {
	st := gwproto.StatusReply{
		SchemaVersion: gwproto.Version,
		QueueDepth:    len(g.queue),
		QueueCap:      cap(g.queue),
		Submitted:     g.submitted.Load(),
		Shed:          g.shed.Load(),
		Batched:       g.batched.Load(),
		Batches:       g.batches.Load(),
		Solved:        g.solved.Load(),
		Errors:        g.errors.Load(),
	}
	for i, ma := range g.cfg.MAs {
		st.MAs = append(st.MAs, gwproto.MAStatus{
			Name:      ma,
			Submitted: g.perMA[i].submitted.Load(),
			Failed:    g.perMA[i].failed.Load(),
		})
	}
	return st
}
