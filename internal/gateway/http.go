package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/diet"
	"repro/internal/gwproto"
	"repro/internal/metrics"
)

// This file is the HTTP face of the gateway: the /api/v1 JSON endpoints
// speaking the gwproto contract, mounted over the standard observability
// mux (/metrics, /statusz, /debug/pprof).

// writeError sends a gwproto.ErrorReply with the given status.
func writeError(w http.ResponseWriter, status int, overloaded bool, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(gwproto.ErrorReply{
		SchemaVersion: gwproto.Version,
		Error:         fmt.Sprintf(format, args...),
		Overloaded:    overloaded,
	})
}

// handleSolve is POST /api/v1/solve: decode the wire profile, run it
// through the gateway, return the solved arguments and timing. Schema
// mismatches are 400, admission sheds 503, upstream failures 502.
func (g *Gateway) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, false, "POST only")
		return
	}
	var req gwproto.SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, false, "decoding request: %v", err)
		return
	}
	if req.SchemaVersion != gwproto.Version {
		writeError(w, http.StatusBadRequest, false,
			"gateway speaks schema v%d, request is v%d", gwproto.Version, req.SchemaVersion)
		return
	}
	p, err := diet.ProfileFromWire(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, false, "invalid profile: %v", err)
		return
	}
	t0 := time.Now()
	info, admission, err := g.Solve(p)
	if err != nil {
		if errors.Is(err, ErrOverload) {
			writeError(w, http.StatusServiceUnavailable, true, "%v", err)
			return
		}
		writeError(w, http.StatusBadGateway, false, "%v", err)
		return
	}
	args, err := p.WireArgs()
	if err != nil {
		writeError(w, http.StatusInternalServerError, false, "encoding solved profile: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(gwproto.SolveReply{
		SchemaVersion: gwproto.Version,
		Server:        info.Server,
		RequestID:     info.RequestID,
		LastIn:        p.LastIn,
		LastInOut:     p.LastInOut,
		LastOut:       p.LastOut,
		Args:          args,
		Timing: gwproto.Timing{
			AdmissionMS: float64(admission) / float64(time.Millisecond),
			FindingMS:   float64(info.Finding) / float64(time.Millisecond),
			QueueMS:     float64(info.QueueWait) / float64(time.Millisecond),
			ComputeMS:   float64(info.Compute) / float64(time.Millisecond),
			TotalMS:     float64(time.Since(t0)) / float64(time.Millisecond),
		},
	})
}

// handleStatus is GET /api/v1/status.
func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(g.Status())
}

// statusz renders the human-readable status page body.
func (g *Gateway) statusz(w http.ResponseWriter) {
	st := g.Status()
	fmt.Fprintf(w, "dietgw: %d/%d admitted, %d submitted, %d shed, %d solved, %d errors\n",
		st.QueueDepth, st.QueueCap, st.Submitted, st.Shed, st.Solved, st.Errors)
	fmt.Fprintf(w, "batching: %d calls rode %d shared finding phases\n", st.Batched, st.Batches)
	for _, ma := range st.MAs {
		fmt.Fprintf(w, "  MA %s: %d submissions, %d failed\n", ma.Name, ma.Submitted, ma.Failed)
	}
}

// Handler returns the gateway's full HTTP mux: the /api/v1 endpoints over
// the standard observability endpoints.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/solve", g.handleSolve)
	mux.HandleFunc("/api/v1/status", g.handleStatus)
	mux.Handle("/", metrics.Handler(g.cfg.Metrics, g.statusz))
	return mux
}

// Serve exposes Handler on addr (":0" for ephemeral) in the background and
// returns the bound address and a shutdown func.
func (g *Gateway) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("gateway: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: g.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
