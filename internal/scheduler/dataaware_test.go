package scheduler

import (
	"math/rand"
	"sort"
	"testing"
)

// randomEstimates builds a randomized platform: servers with mixed power,
// queue state, forecast history, and a random replica layout — a server is
// "data-local" when its InputTransferSeconds is 0.
func randomEstimates(rng *rand.Rand, withTransfers bool) []Estimate {
	n := 2 + rng.Intn(10)
	ests := make([]Estimate, n)
	for i := range ests {
		e := Estimate{
			ServerID:    string(rune('A'+i)) + "sed",
			Service:     "ramsesZoom1",
			Capacity:    1 + rng.Intn(3),
			Running:     rng.Intn(3),
			QueueLen:    rng.Intn(5),
			PowerGFlops: 10 + 90*rng.Float64(),
		}
		if rng.Intn(2) == 0 {
			e.HasForecast = true
			e.ForecastSamples = 1 + rng.Intn(50)
			e.EWMASolveSeconds = 10 + 1000*rng.Float64()
			e.ForecastBaseS = 5 * rng.Float64()
			e.ForecastPerGFlopS = 0.2 * rng.Float64()
			e.ForecastConfidence = rng.Float64()
			e.PendingWorkSeconds = 2000 * rng.Float64()
		}
		if withTransfers && rng.Intn(2) == 0 {
			e.InputTransferSeconds = 1000 * rng.Float64()
		}
		ests[i] = e
	}
	return ests
}

// completionCost is the test's own view of a server's predicted cost for the
// request — compute + wait + transfer — written out independently of the
// policies' internals.
func completionCost(e Estimate, work, minConf float64) float64 {
	dur := forecastDur(e, work, minConf)
	cap := float64(e.Capacity)
	if cap < 1 {
		cap = 1
	}
	wait, trusted := e.TrustedDrainSeconds(minConf)
	if !trusted {
		wait = float64(e.QueueLen+e.Running) * dur / cap
	}
	return wait + dur + e.InputTransferSeconds
}

// TestDataAwareNeverWorseThanDataLocal is the ranking property: whatever the
// platform and replica layout, the server a data-aware policy picks first
// never has a strictly worse predicted (compute + wait + transfer) cost than
// any data-local candidate. A policy that overvalued locality or ignored the
// transfer term would both fail it.
func TestDataAwareNeverWorseThanDataLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ca := NewContentionAware()
	for trial := 0; trial < 500; trial++ {
		ests := randomEstimates(rng, true)
		req := Request{Service: "ramsesZoom1", WorkGFlops: 100 + 40000*rng.Float64()}
		order := ca.Rank(req, ests)
		if len(order) != len(ests) {
			t.Fatalf("trial %d: rank returned %d of %d servers", trial, len(order), len(ests))
		}
		chosen := completionCost(ests[order[0]], req.WorkGFlops, ca.MinConfidence)
		for i, e := range ests {
			if e.InputTransferSeconds != 0 {
				continue // not data-local
			}
			local := completionCost(e, req.WorkGFlops, ca.MinConfidence)
			if chosen > local+1e-9 {
				t.Fatalf("trial %d: chose %s at cost %.3f over data-local %s at cost %.3f\nests[%d]=%+v",
					trial, ests[order[0]].ServerID, chosen, e.ServerID, local, i, e)
			}
		}
	}
}

// preA13Score reproduces the policies' scoring exactly as it was before the
// transfer term existed.
func preA13Score(name string, e Estimate, work, minConf float64) float64 {
	dur := forecastDur(e, work, minConf)
	cap := float64(e.Capacity)
	if cap < 1 {
		cap = 1
	}
	switch name {
	case "forecastaware":
		return float64(e.QueueLen+e.Running+1) * dur / cap
	default: // contentionaware
		wait, trusted := e.TrustedDrainSeconds(minConf)
		if !trusted {
			wait = float64(e.QueueLen+e.Running) * dur / cap
		}
		return wait + dur
	}
}

// TestDataBlindRankingUnchanged guards the data-blind contract: with no
// registered datasets (every InputTransferSeconds zero), both forecast
// policies rank exactly as their pre-A13 formulas did, order for order.
func TestDataBlindRankingUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	policies := []Policy{NewForecastAware(), NewContentionAware()}
	for trial := 0; trial < 500; trial++ {
		ests := randomEstimates(rng, false)
		req := Request{Service: "ramsesZoom1", WorkGFlops: 100 + 40000*rng.Float64()}
		for _, p := range policies {
			got := p.Rank(req, ests)
			want := byServerID(ests)
			sort.SliceStable(want, func(a, b int) bool {
				return preA13Score(p.Name(), ests[want[a]], req.WorkGFlops, DefaultMinConfidence) <
					preA13Score(p.Name(), ests[want[b]], req.WorkGFlops, DefaultMinConfidence)
			})
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d, %s: rank diverged from pre-A13 order at %d: got %v want %v",
						trial, p.Name(), i, got, want)
				}
			}
		}
	}
}

// TestTransferCostBreaksTies pins the headline behaviour: two otherwise
// identical servers, one data-local — the data-local one must now win the
// tie it used to lose to ServerID order.
func TestTransferCostBreaksTies(t *testing.T) {
	base := Estimate{
		Service: "ramsesZoom1", Capacity: 1, PowerGFlops: 50,
	}
	far := base
	far.ServerID = "Asame" // wins pure ServerID ties
	far.InputTransferSeconds = 120
	near := base
	near.ServerID = "Bsame"
	for _, p := range []Policy{NewForecastAware(), NewContentionAware()} {
		order := p.Rank(Request{Service: "ramsesZoom1", WorkGFlops: 1000}, []Estimate{far, near})
		if order[0] != 1 {
			t.Fatalf("%s: data-local server must win the tie, got order %v", p.Name(), order)
		}
	}
}
