package scheduler

import "sort"

// This file holds the history-aware plug-in policies fed by the CoRI-style
// forecaster (internal/cori). Both rank by *predicted seconds*, so servers
// with and without forecast data stay comparable inside one request: a
// server without history is scored from its advertised power exactly the way
// PowerAware scores it, which is the graceful-degradation contract — with no
// history anywhere, both policies reduce to PowerAware.

// forecastDur predicts the duration of work on one server: the fitted model
// when the server has trusted history, else the power-based estimate.
func forecastDur(e Estimate, work, minConfidence float64) float64 {
	if e.HasForecast && e.ForecastSamples > 0 && e.ForecastConfidence >= minConfidence {
		if p := e.ForecastSolveSeconds(work); p > 0 {
			return p
		}
	}
	power := e.PowerGFlops
	if power <= 0 {
		power = 1
	}
	return work / power
}

// ForecastAware ranks servers by the predicted completion time of the new
// request: (pending ahead of it + itself) × the forecast duration of the
// request on that server, scaled by capacity — PowerAware with the measured
// duration model in place of the advertised-power guess.
type ForecastAware struct {
	// DefaultWorkGFlops is assumed when the request carries no estimate.
	DefaultWorkGFlops float64
	// MinConfidence discards models whose history has gone stale; such
	// servers are scored from advertised power instead.
	MinConfidence float64
}

// NewForecastAware returns a ForecastAware policy with PowerAware's default
// work assumption and the shared staleness floor.
func NewForecastAware() *ForecastAware {
	return &ForecastAware{DefaultWorkGFlops: 20000, MinConfidence: DefaultMinConfidence}
}

// Name implements Policy.
func (f *ForecastAware) Name() string { return "forecastaware" }

// Rank implements Policy.
func (f *ForecastAware) Rank(req Request, ests []Estimate) []int {
	base := byServerID(ests)
	work := req.WorkGFlops
	if work <= 0 {
		work = f.DefaultWorkGFlops
	}
	score := func(e Estimate) float64 {
		pending := float64(e.QueueLen + e.Running + 1)
		cap := float64(e.Capacity)
		if cap < 1 {
			cap = 1
		}
		// Input transfer happens once, before the compute, so it adds to the
		// completion time rather than scaling with the queue. Data-local
		// servers carry 0 here and win the ties they used to lose.
		return pending*forecastDur(e, work, f.MinConfidence)/cap + e.InputTransferSeconds
	}
	sort.SliceStable(base, func(a, b int) bool { return score(ests[base[a]]) < score(ests[base[b]]) })
	return base
}

// ContentionAware is the queue-wait variant: it ranks by the forecast drain
// time of the work the server has already accepted (the CoRI
// PendingWorkSeconds metric) plus the forecast duration of the new request.
// Where ForecastAware approximates queueing multiplicatively from the queue
// length, ContentionAware uses the forecaster's explicit prediction of when
// the server frees up, which stays accurate when queued jobs have very
// different sizes.
type ContentionAware struct {
	DefaultWorkGFlops float64
	MinConfidence     float64
}

// NewContentionAware returns a ContentionAware policy with the same defaults
// as ForecastAware.
func NewContentionAware() *ContentionAware {
	return &ContentionAware{DefaultWorkGFlops: 20000, MinConfidence: DefaultMinConfidence}
}

// Name implements Policy.
func (c *ContentionAware) Name() string { return "contentionaware" }

// Rank implements Policy.
func (c *ContentionAware) Rank(req Request, ests []Estimate) []int {
	base := byServerID(ests)
	work := req.WorkGFlops
	if work <= 0 {
		work = c.DefaultWorkGFlops
	}
	score := func(e Estimate) float64 {
		dur := forecastDur(e, work, c.MinConfidence)
		cap := float64(e.Capacity)
		if cap < 1 {
			cap = 1
		}
		wait, trusted := e.TrustedDrainSeconds(c.MinConfidence)
		if !trusted {
			// No trusted drain forecast (absent or gone stale): approximate
			// the wait from the queue length, degrading to ForecastAware's
			// (and ultimately PowerAware's) view.
			wait = float64(e.QueueLen+e.Running) * dur / cap
		}
		// The third dimension of the estimate: compute + wait + the predicted
		// time for the input data to arrive (0 when data-local).
		return wait + dur + e.InputTransferSeconds
	}
	sort.SliceStable(base, func(a, b int) bool { return score(ests[base[a]]) < score(ests[base[b]]) })
	return base
}
