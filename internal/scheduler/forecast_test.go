package scheduler

import (
	"testing"
	"testing/quick"
)

// withForecast marks an estimate as carrying a fitted model that predicts
// durations from a measured throughput of gflops.
func withForecast(e Estimate, measuredGFlops float64, samples int) Estimate {
	e.HasForecast = true
	e.ForecastSamples = samples
	e.ForecastPerGFlopS = 1 / measuredGFlops
	e.EWMASolveSeconds = 1000 / measuredGFlops
	e.ForecastConfidence = 1
	return e
}

func TestForecastSolveSeconds(t *testing.T) {
	var e Estimate
	if got := e.ForecastSolveSeconds(1000); got >= 0 {
		t.Fatalf("no forecast must predict negative, got %g", got)
	}
	e = withForecast(e, 50, 10)
	if got := e.ForecastSolveSeconds(1000); got != 20 {
		t.Fatalf("ForecastSolveSeconds(1000) = %g, want 20", got)
	}
	// Unknown work size falls back to the EWMA.
	if got := e.ForecastSolveSeconds(0); got != e.EWMASolveSeconds {
		t.Fatalf("zero-work forecast = %g, want the EWMA %g", got, e.EWMASolveSeconds)
	}
	// A slope-free model (constant-time service) answers with the EWMA too.
	e.ForecastPerGFlopS = 0
	if got := e.ForecastSolveSeconds(1000); got != e.EWMASolveSeconds {
		t.Fatalf("slope-free forecast = %g, want the EWMA %g", got, e.EWMASolveSeconds)
	}
}

func TestForecastAwareDegradesToPowerAware(t *testing.T) {
	// No server has history: ForecastAware and ContentionAware must produce
	// exactly PowerAware's ranking (the graceful-degradation contract).
	e := ests(5)
	e[1].QueueLen = 3
	e[3].QueueLen = 1
	req := Request{Service: "svc", WorkGFlops: 5000}
	want := NewPowerAware().Rank(req, e)
	for _, p := range []Policy{NewForecastAware(), NewContentionAware()} {
		got := p.Rank(req, e)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s without history ranked %v, want PowerAware's %v", p.Name(), got, want)
			}
		}
	}
}

func TestForecastAwareTrustsMeasurementOverAdvertisement(t *testing.T) {
	// A advertises 100 GFlops but measures 10; B advertises 10 but measures
	// 100. PowerAware is fooled; ForecastAware must pick B.
	e := ests(2)
	e[0].PowerGFlops = 100
	e[0] = withForecast(e[0], 10, 20)
	e[1].PowerGFlops = 10
	e[1] = withForecast(e[1], 100, 20)
	req := Request{Service: "svc", WorkGFlops: 1000}
	if got := NewPowerAware().Rank(req, e); e[got[0]].ServerID != "A" {
		t.Fatalf("precondition: PowerAware should be fooled into A, got %s", e[got[0]].ServerID)
	}
	for _, p := range []Policy{NewForecastAware(), NewContentionAware()} {
		if got := p.Rank(req, e); e[got[0]].ServerID != "B" {
			t.Fatalf("%s picked %s, want the measured-fast B", p.Name(), e[got[0]].ServerID)
		}
	}
}

func TestForecastAwareStaleModelFallsBack(t *testing.T) {
	// The lying-but-stale server: its flattering model has decayed below the
	// confidence floor, so the advertised powers decide again.
	e := ests(2)
	e[0].PowerGFlops = 100
	e[1].PowerGFlops = 10
	e[1] = withForecast(e[1], 1000, 5)
	e[1].ForecastConfidence = 0.01 // below the default 0.05 floor
	f := NewForecastAware()
	if got := f.Rank(Request{WorkGFlops: 1000}, e); e[got[0]].ServerID != "A" {
		t.Fatalf("stale forecast must be ignored: picked %s, want A", e[got[0]].ServerID)
	}
	e[1].ForecastConfidence = 1
	if got := f.Rank(Request{WorkGFlops: 1000}, e); e[got[0]].ServerID != "B" {
		t.Fatalf("fresh forecast must win: picked %s, want B", e[got[0]].ServerID)
	}
}

func TestContentionAwareUsesPendingWorkForecast(t *testing.T) {
	// Equal measured speed; A's short queue hides one huge job
	// (PendingWorkSeconds large), B's longer queue holds tiny jobs.
	// Queue-length heuristics pick A; the drain forecast must pick B.
	e := ests(2)
	e[0] = withForecast(e[0], 50, 10)
	e[0].QueueLen = 1
	e[0].PendingWorkSeconds = 10000
	e[1] = withForecast(e[1], 50, 10)
	e[1].QueueLen = 3
	e[1].PendingWorkSeconds = 30
	req := Request{WorkGFlops: 1000}
	if got := NewForecastAware().Rank(req, e); e[got[0]].ServerID != "A" {
		t.Fatalf("precondition: queue-length ranking should pick A, got %s", e[got[0]].ServerID)
	}
	if got := NewContentionAware().Rank(req, e); e[got[0]].ServerID != "B" {
		t.Fatalf("ContentionAware picked %s, want the fast-draining B", e[got[0]].ServerID)
	}
}

func TestForecastSimulatedBurst(t *testing.T) {
	// 60-request burst over servers whose advertised powers are all equal
	// but whose measured speeds differ 3×: ForecastAware must give the
	// genuinely fast servers about 3× the work.
	p := NewForecastAware()
	e := ests(4)
	for i := range e {
		e[i].PowerGFlops = 20
	}
	e[0] = withForecast(e[0], 10, 30)
	e[1] = withForecast(e[1], 10, 30)
	e[2] = withForecast(e[2], 30, 30)
	e[3] = withForecast(e[3], 30, 30)
	counts := make(map[string]int)
	for i := 0; i < 80; i++ {
		order := p.Rank(Request{WorkGFlops: 100}, e)
		counts[e[order[0]].ServerID]++
		e[order[0]].QueueLen++
	}
	if counts["C"] != 30 || counts["D"] != 30 || counts["A"] != 10 || counts["B"] != 10 {
		t.Errorf("measured-speed-proportional shares want 10/10/30/30, got %v", counts)
	}
}

func TestForecastPoliciesPermutationProperty(t *testing.T) {
	policies := []Policy{NewForecastAware(), NewContentionAware()}
	f := func(nServers uint8, queueLens []uint8, samples []uint8) bool {
		n := int(nServers%12) + 1
		e := ests(n)
		for i := range e {
			if i < len(queueLens) {
				e[i].QueueLen = int(queueLens[i] % 50)
			}
			if i < len(samples) && samples[i]%2 == 0 {
				e[i] = withForecast(e[i], float64(samples[i]%40)+1, int(samples[i]))
			}
		}
		for _, p := range policies {
			if !isPermutation(p.Rank(Request{Service: "svc", WorkGFlops: 100}, e), n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestByNameForecastPolicies(t *testing.T) {
	for name, want := range map[string]string{
		"forecastaware":   "forecastaware",
		"forecast":        "forecastaware",
		"contentionaware": "contentionaware",
		"contention":      "contentionaware",
	} {
		p, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("ByName(%q) = %s, want %s", name, p.Name(), want)
		}
	}
}
