// Package scheduler implements DIET's plug-in scheduler framework: servers
// report estimation vectors, and a pluggable policy ranks them for each
// incoming request. The same policies drive both the live middleware (the
// Master Agent ranks SeDs) and the discrete-event platform simulator, which
// is what makes the paper's scheduling ablation (§6.2/§8: "a better makespan
// could be attained by writing a plug-in scheduler") directly measurable.
package scheduler

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Estimate is one server's estimation vector, the DIET "collected computation
// ability" for a service.
type Estimate struct {
	ServerID         string  // unique SeD identity
	Service          string  // service this estimate answers for
	Capacity         int     // concurrent solve slots (the paper's SeDs have 1)
	Running          int     // solves currently executing
	QueueLen         int     // requests waiting
	PowerGFlops      float64 // advertised processing power
	FreeMemMB        float64
	LastSolveSeconds float64 // duration of the last completed solve; <0 if none yet

	// CoRI/FAST forecast extension (internal/cori). The zero value means the
	// server runs no forecaster; policies must then fall back to the static
	// fields above.
	HasForecast        bool
	ForecastSamples    int     // solves the model was fitted on
	EWMASolveSeconds   float64 // exponentially weighted recent solve duration
	ForecastBaseS      float64 // least-squares intercept, seconds
	ForecastPerGFlopS  float64 // least-squares slope, seconds per GFlop (0 = no fit)
	ForecastConfidence float64 // (0,1]; decays as the history goes stale
	PendingWorkSeconds float64 // predicted time to drain running+queued work

	// Data-aware extension (internal/dataman + cori.TransferMonitor):
	// predicted seconds to move the request's input data to this server from
	// its nearest replicas. 0 means data-local or no registered inputs, so a
	// platform without datasets ranks exactly as it did before the field
	// existed — the data-blind contract.
	InputTransferSeconds float64
}

// DefaultMinConfidence is the staleness floor shared by the forecast-aware
// policies and the agent-side truncation: models whose confidence has
// decayed below it are ignored in favour of the static fields, so every
// layer of the stack agrees on which models are trusted.
const DefaultMinConfidence = 0.05

// TrustedDrainSeconds returns the forecast drain time of the server's
// accepted work when the estimate carries a model trusted at minConfidence;
// ok is false when the caller must fall back to its own queue-based
// approximation.
func (e Estimate) TrustedDrainSeconds(minConfidence float64) (float64, bool) {
	if !e.HasForecast || e.ForecastSamples == 0 ||
		e.ForecastConfidence < minConfidence || e.PendingWorkSeconds < 0 {
		return 0, false
	}
	return e.PendingWorkSeconds, true
}

// ForecastSolveSeconds predicts how long work GFlops would take on this
// server using the forecast extension; it returns a negative value when the
// estimate carries no usable forecast.
func (e Estimate) ForecastSolveSeconds(workGFlops float64) float64 {
	if !e.HasForecast || e.ForecastSamples == 0 {
		return -1
	}
	if workGFlops > 0 && e.ForecastPerGFlopS > 0 {
		if p := e.ForecastBaseS + e.ForecastPerGFlopS*workGFlops; p > 0 {
			return p
		}
	}
	return e.EWMASolveSeconds
}

// Request describes the work to place.
type Request struct {
	Service    string
	Seq        int     // client-side sequence number
	WorkGFlops float64 // caller's work estimate; 0 if unknown
}

// Policy ranks candidate servers for a request, best first. Implementations
// must be deterministic given their own state and safe for concurrent use.
type Policy interface {
	Name() string
	// Rank returns indices into ests ordered from most to least preferred.
	Rank(req Request, ests []Estimate) []int
}

// byServerID returns index order sorted by ServerID, the deterministic base
// ordering every policy starts from.
func byServerID(ests []Estimate) []int {
	idx := make([]int, len(ests))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ests[idx[a]].ServerID < ests[idx[b]].ServerID })
	return idx
}

// RoundRobin reproduces DIET's default behaviour in the paper's experiment:
// with no execution history the agent can do no better than to "share the
// total amount of requests on the available SeDs", handing them out in
// rotation. The rotation counter is per-service.
type RoundRobin struct {
	mu       sync.Mutex
	counters map[string]int
}

// NewRoundRobin returns a fresh rotation state.
func NewRoundRobin() *RoundRobin { return &RoundRobin{counters: make(map[string]int)} }

// Name implements Policy.
func (r *RoundRobin) Name() string { return "roundrobin" }

// Rank implements Policy.
func (r *RoundRobin) Rank(req Request, ests []Estimate) []int {
	base := byServerID(ests)
	if len(base) == 0 {
		return base
	}
	r.mu.Lock()
	c := r.counters[req.Service]
	r.counters[req.Service] = c + 1
	r.mu.Unlock()
	out := make([]int, len(base))
	for i := range base {
		out[i] = base[(c+i)%len(base)]
	}
	return out
}

// Random picks a seeded-random order; a baseline for the ablation.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom returns a Random policy with the given seed.
func NewRandom(seed int64) *Random { return &Random{rng: rand.New(rand.NewSource(seed))} }

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// Rank implements Policy.
func (r *Random) Rank(req Request, ests []Estimate) []int {
	base := byServerID(ests)
	r.mu.Lock()
	r.rng.Shuffle(len(base), func(i, j int) { base[i], base[j] = base[j], base[i] })
	r.mu.Unlock()
	return base
}

// MCT (minimum completion time) ranks servers by the estimated time until a
// newly queued request would finish, using each server's last observed solve
// time. With no history it degrades to least-loaded.
type MCT struct {
	// DefaultSolveSeconds is assumed when a server has no history.
	DefaultSolveSeconds float64
}

// NewMCT returns an MCT policy with a 1-hour default service time.
func NewMCT() *MCT { return &MCT{DefaultSolveSeconds: 3600} }

// Name implements Policy.
func (m *MCT) Name() string { return "mct" }

// Rank implements Policy.
func (m *MCT) Rank(req Request, ests []Estimate) []int {
	base := byServerID(ests)
	score := func(e Estimate) float64 {
		st := e.LastSolveSeconds
		if st <= 0 {
			st = m.DefaultSolveSeconds
		}
		pending := float64(e.QueueLen + e.Running + 1)
		cap := float64(e.Capacity)
		if cap < 1 {
			cap = 1
		}
		return pending * st / cap
	}
	sort.SliceStable(base, func(a, b int) bool { return score(ests[base[a]]) < score(ests[base[b]]) })
	return base
}

// PowerAware is the plug-in the paper proposes as future work (§8): it maps
// requests "according to the processing power" by estimating completion time
// as (work × pending) / GFlops. It removes the Toulouse-vs-Nancy imbalance
// of Figure 5.
type PowerAware struct {
	// DefaultWorkGFlops is assumed when the request carries no estimate.
	DefaultWorkGFlops float64
}

// NewPowerAware returns a PowerAware policy assuming ~20 TFlop of work per
// request when the client does not say (≈1.4 h on a 4-GFlops Opteron).
func NewPowerAware() *PowerAware { return &PowerAware{DefaultWorkGFlops: 20000} }

// Name implements Policy.
func (p *PowerAware) Name() string { return "poweraware" }

// Rank implements Policy.
func (p *PowerAware) Rank(req Request, ests []Estimate) []int {
	base := byServerID(ests)
	work := req.WorkGFlops
	if work <= 0 {
		work = p.DefaultWorkGFlops
	}
	score := func(e Estimate) float64 {
		power := e.PowerGFlops
		if power <= 0 {
			power = 1
		}
		pending := float64(e.QueueLen + e.Running + 1)
		cap := float64(e.Capacity)
		if cap < 1 {
			cap = 1
		}
		return pending * work / power / cap
	}
	sort.SliceStable(base, func(a, b int) bool { return score(ests[base[a]]) < score(ests[base[b]]) })
	return base
}

// ByName constructs a policy from its canonical name; the experiment harness
// and the dietagent binary use it for their -scheduler flags.
func ByName(name string, seed int64) (Policy, error) {
	switch name {
	case "roundrobin", "rr", "":
		return NewRoundRobin(), nil
	case "random":
		return NewRandom(seed), nil
	case "mct":
		return NewMCT(), nil
	case "poweraware", "plugin":
		return NewPowerAware(), nil
	case "forecastaware", "forecast":
		return NewForecastAware(), nil
	case "contentionaware", "contention":
		return NewContentionAware(), nil
	}
	return nil, fmt.Errorf("scheduler: unknown policy %q (want roundrobin, random, mct, poweraware, forecastaware or contentionaware)", name)
}
