package scheduler

import (
	"testing"
	"testing/quick"
)

func ests(n int) []Estimate {
	out := make([]Estimate, n)
	for i := range out {
		out[i] = Estimate{
			ServerID:         string(rune('A' + i)),
			Service:          "svc",
			Capacity:         1,
			PowerGFlops:      float64(10 + i),
			LastSolveSeconds: -1,
		}
	}
	return out
}

// isPermutation checks that order is a permutation of 0..n-1.
func isPermutation(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return false
		}
		seen[i] = true
	}
	return true
}

func TestRoundRobinEqualShare(t *testing.T) {
	// The paper's observation: 100 requests over 11 servers give 9 each,
	// one server getting 10.
	rr := NewRoundRobin()
	e := ests(11)
	counts := make(map[string]int)
	for i := 0; i < 100; i++ {
		order := rr.Rank(Request{Service: "svc", Seq: i}, e)
		if !isPermutation(order, 11) {
			t.Fatal("not a permutation")
		}
		counts[e[order[0]].ServerID]++
	}
	tens := 0
	for id, c := range counts {
		switch c {
		case 9:
		case 10:
			tens++
		default:
			t.Errorf("server %s got %d requests, want 9 or 10", id, c)
		}
	}
	if tens != 1 {
		t.Errorf("%d servers got 10 requests, want exactly 1", tens)
	}
}

func TestRoundRobinPerServiceCounters(t *testing.T) {
	rr := NewRoundRobin()
	e := ests(3)
	a := rr.Rank(Request{Service: "one"}, e)
	b := rr.Rank(Request{Service: "two"}, e)
	// A fresh counter for each service: both start at the same server.
	if e[a[0]].ServerID != e[b[0]].ServerID {
		t.Error("per-service counters should start at the same rotation point")
	}
	c := rr.Rank(Request{Service: "one"}, e)
	if e[c[0]].ServerID == e[a[0]].ServerID {
		t.Error("second request of a service must rotate")
	}
}

func TestRandomSeededAndComplete(t *testing.T) {
	e := ests(7)
	r1 := NewRandom(5)
	r2 := NewRandom(5)
	for i := 0; i < 10; i++ {
		a := r1.Rank(Request{}, e)
		b := r2.Rank(Request{}, e)
		if !isPermutation(a, 7) {
			t.Fatal("not a permutation")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("same seed must give same order")
			}
		}
	}
}

func TestMCTPrefersShortQueues(t *testing.T) {
	m := NewMCT()
	e := ests(3)
	e[0].QueueLen = 5
	e[1].QueueLen = 0
	e[2].QueueLen = 2
	order := m.Rank(Request{}, e)
	if e[order[0]].ServerID != "B" {
		t.Errorf("MCT picked %s, want the empty queue B", e[order[0]].ServerID)
	}
}

func TestMCTUsesHistory(t *testing.T) {
	m := NewMCT()
	e := ests(2)
	// A: empty queue but slow history; B: one queued but fast history.
	e[0].LastSolveSeconds = 10000
	e[1].QueueLen = 1
	e[1].LastSolveSeconds = 10
	order := m.Rank(Request{}, e)
	if e[order[0]].ServerID != "B" {
		t.Error("MCT should weigh history: 2×10s beats 1×10000s")
	}
}

func TestPowerAwarePrefersFastServers(t *testing.T) {
	p := NewPowerAware()
	e := ests(3) // powers 10, 11, 12
	order := p.Rank(Request{WorkGFlops: 1000}, e)
	if e[order[0]].ServerID != "C" {
		t.Errorf("PowerAware picked %s, want the fastest C", e[order[0]].ServerID)
	}
}

func TestPowerAwareBalancesLoadAndPower(t *testing.T) {
	p := NewPowerAware()
	e := ests(2)
	e[0].PowerGFlops = 10 // A: slow, idle
	e[1].PowerGFlops = 30 // B: 3x faster, 2 queued
	e[1].QueueLen = 2
	// A: 1×W/10 = W/10; B: 3×W/30 = W/10 → tie broken by ID (A first, stable).
	order := p.Rank(Request{WorkGFlops: 100}, e)
	if e[order[0]].ServerID != "A" {
		t.Errorf("tie should break toward A, got %s", e[order[0]].ServerID)
	}
	e[1].QueueLen = 1
	order = p.Rank(Request{WorkGFlops: 100}, e)
	if e[order[0]].ServerID != "B" {
		t.Errorf("2×W/30 < W/10: want B, got %s", e[order[0]].ServerID)
	}
}

func TestPowerAwareSimulatedCampaign(t *testing.T) {
	// Simulate the paper's 100-request burst over heterogeneous servers:
	// the power-aware policy must hand the fast servers more requests.
	p := NewPowerAware()
	e := ests(4)
	e[0].PowerGFlops = 10
	e[1].PowerGFlops = 10
	e[2].PowerGFlops = 30
	e[3].PowerGFlops = 30
	counts := make(map[string]int)
	for i := 0; i < 80; i++ {
		order := p.Rank(Request{WorkGFlops: 100}, e)
		chosen := order[0]
		counts[e[chosen].ServerID]++
		e[chosen].QueueLen++ // queue grows as in a burst
	}
	if counts["C"] <= counts["A"] || counts["D"] <= counts["B"] {
		t.Errorf("fast servers should get more work: %v", counts)
	}
	// Perfect balance: makespan proportional shares are 10:10:30:30 → 10,10,30,30.
	if counts["C"] != 30 || counts["A"] != 10 {
		t.Logf("shares %v (exact 10/10/30/30 expected for deterministic tie-break)", counts)
	}
}

func TestRankPermutationProperty(t *testing.T) {
	policies := []Policy{NewRoundRobin(), NewRandom(3), NewMCT(), NewPowerAware()}
	f := func(nServers uint8, queueLens []uint8) bool {
		n := int(nServers%12) + 1
		e := ests(n)
		for i := range e {
			if i < len(queueLens) {
				e[i].QueueLen = int(queueLens[i] % 50)
			}
		}
		for _, p := range policies {
			if !isPermutation(p.Rank(Request{Service: "svc"}, e), n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyEstimates(t *testing.T) {
	for _, p := range []Policy{NewRoundRobin(), NewRandom(1), NewMCT(), NewPowerAware()} {
		if got := p.Rank(Request{}, nil); len(got) != 0 {
			t.Errorf("%s: non-empty rank for no servers", p.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"roundrobin": "roundrobin",
		"rr":         "roundrobin",
		"":           "roundrobin",
		"random":     "random",
		"mct":        "mct",
		"poweraware": "poweraware",
		"plugin":     "poweraware",
	} {
		p, err := ByName(name, 1)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("ByName(%q) = %s, want %s", name, p.Name(), want)
		}
	}
	if _, err := ByName("nonsense", 1); err == nil {
		t.Error("unknown policy should fail")
	}
}
