package scheduler

import (
	"fmt"
	"testing"
)

// benchEstimates builds a mixed candidate list: half the servers carry a
// trusted forecast extension, half only static fields — the shape an MA
// ranks on a partially trained platform.
func benchEstimates(n int) []Estimate {
	out := make([]Estimate, n)
	for i := range out {
		out[i] = Estimate{
			ServerID:    fmt.Sprintf("SeD-%03d", i),
			Service:     "zoom",
			Capacity:    1,
			QueueLen:    i % 7,
			Running:     i % 2,
			PowerGFlops: float64(20 + i%40),
		}
		if i%2 == 0 {
			out[i].HasForecast = true
			out[i].ForecastSamples = 32
			out[i].EWMASolveSeconds = float64(300 + 10*i)
			out[i].ForecastBaseS = 5
			out[i].ForecastPerGFlopS = 1 / float64(20+i%40)
			out[i].ForecastConfidence = 1
			out[i].PendingWorkSeconds = float64(600 * (i % 7))
		}
	}
	return out
}

func benchRank(b *testing.B, p Policy, n int) {
	ests := benchEstimates(n)
	req := Request{Service: "zoom", WorkGFlops: 20000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.Rank(req, ests); len(got) != n {
			b.Fatalf("rank returned %d of %d", len(got), n)
		}
	}
}

func BenchmarkForecastAwareRank64(b *testing.B)   { benchRank(b, NewForecastAware(), 64) }
func BenchmarkContentionAwareRank64(b *testing.B) { benchRank(b, NewContentionAware(), 64) }
func BenchmarkPowerAwareRank64(b *testing.B)      { benchRank(b, NewPowerAware(), 64) }
