package dataman

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/rpc"
)

// deadNode registers a node whose store answers every call with an error —
// a crashed machine that is still in the catalog's node table.
func deadNode(t *testing.T, cat *Catalog, node string) {
	t.Helper()
	srv := rpc.NewServer()
	srv.Register(ObjectName, func(method string, body []byte) ([]byte, error) {
		return nil, fmt.Errorf("node %s is dead", node)
	})
	addr, err := rpc.ServeLocal("dataman-"+node, srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddNode(node, addr); err != nil {
		t.Fatal(err)
	}
}

// TestDatamanFetchRetriesPastDeadStore pins the Fetch retry contract the
// scheduler now leans on: with two replicas and the first store dead (its
// Get errors, not merely missing bytes), both Fetch and FetchTo must fall
// over to the live replica instead of surfacing the first error.
func TestDatamanFetchRetriesPastDeadStore(t *testing.T) {
	cat, stores := cluster(t, 2)
	deadNode(t, cat, "corpse")

	// Publish on the dead node first so it is the preferred replica, then a
	// live copy on node1.
	if err := cat.Publish("snap", "corpse", Persistent); err != nil {
		t.Fatal(err)
	}
	if err := stores[1].Put("snap", Persistent, []byte("bytes")); err != nil {
		t.Fatal(err)
	}
	if err := cat.Publish("snap", "node1", Persistent); err != nil {
		t.Fatal(err)
	}

	it, err := cat.Fetch("snap")
	if err != nil || string(it.Data) != "bytes" {
		t.Fatalf("Fetch must retry the next replica: %+v, %v", it, err)
	}
	it, err = cat.FetchTo("snap", "node0")
	if err != nil || string(it.Data) != "bytes" {
		t.Fatalf("FetchTo must retry the next replica: %+v, %v", it, err)
	}
	// With every live replica unpublished (FetchTo minted one on node0),
	// only the dead node remains and the last error finally surfaces.
	if err := cat.Unpublish("snap", "node1"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Unpublish("snap", "node0"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Fetch("snap"); err == nil {
		t.Fatal("all-dead fetch must fail")
	}
}

// TestDatamanNodeDeathMidReplicate kills the destination node mid-Replicate:
// the copy must fail cleanly, leaving no orphan replica record and a
// ReplicaCount consistent with Locate.
func TestDatamanNodeDeathMidReplicate(t *testing.T) {
	cat, stores := cluster(t, 1)
	deadNode(t, cat, "corpse")
	if err := stores[0].Put("dat", Persistent, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := cat.Publish("dat", "node0", Persistent); err != nil {
		t.Fatal(err)
	}

	if err := cat.Replicate("dat", "corpse"); err == nil {
		t.Fatal("replicating onto a dead node must fail")
	}
	nodes, _, err := cat.Locate("dat")
	if err != nil || len(nodes) != 1 || nodes[0] != "node0" {
		t.Fatalf("dead destination must leave the catalog untouched, got %v, %v", nodes, err)
	}
	if got := cat.ReplicaCount("dat"); got != len(nodes) {
		t.Fatalf("ReplicaCount %d inconsistent with Locate %v", got, nodes)
	}
}

// TestDatamanChaosConcurrentOps hammers one catalog with concurrent Publish,
// Replicate, Unpublish, Fetch and FetchTo — including replication toward a
// node that dies mid-run — under -race. Invariants at the end: every
// advertised replica is fetchable from its store, and ReplicaCount agrees
// with Locate for every datum.
func TestDatamanChaosConcurrentOps(t *testing.T) {
	const iters = 25
	cat, stores := cluster(t, 4)
	deadNode(t, cat, "corpse")
	byName := map[string]*Store{}
	for i, st := range stores {
		byName[fmt.Sprintf("node%d", i)] = st
	}

	ids := []string{"ic/a", "ic/b", "ic/c"}
	for i, id := range ids {
		node := fmt.Sprintf("node%d", i)
		if err := byName[node].Put(id, Persistent, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if err := cat.Publish(id, node, Persistent); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	run := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(i)
			}
		}()
	}
	for _, id := range ids {
		id := id
		run(func(i int) { _ = cat.Replicate(id, fmt.Sprintf("node%d", i%4)) })
		run(func(i int) { _ = cat.Replicate(id, "corpse") })
		run(func(i int) {
			_ = cat.Unpublish(id, fmt.Sprintf("node%d", 3-i%3))
		})
		run(func(i int) {
			if it, err := cat.Fetch(id); err == nil && string(it.Data) != "payload" {
				t.Errorf("%s: fetched corrupt replica %q", id, it.Data)
			}
		})
		run(func(i int) {
			if it, err := cat.FetchTo(id, fmt.Sprintf("node%d", i%4)); err == nil && string(it.Data) != "payload" {
				t.Errorf("%s: FetchTo returned corrupt replica %q", id, it.Data)
			}
		})
		run(func(i int) {
			// Re-publish from a store that actually holds the bytes, racing
			// the unpublisher.
			node := fmt.Sprintf("node%d", i%4)
			if _, err := byName[node].Get(id); err == nil {
				_ = cat.Publish(id, node, Persistent)
			}
		})
	}
	wg.Wait()

	for _, id := range ids {
		nodes, _, err := cat.Locate(id)
		if err != nil {
			continue // fully unpublished by the chaos; fine
		}
		if got := cat.ReplicaCount(id); got != len(nodes) {
			t.Errorf("%s: ReplicaCount %d inconsistent with Locate %v", id, got, nodes)
		}
		for _, n := range nodes {
			if n == "corpse" {
				t.Errorf("%s: dead node advertised as a replica", id)
				continue
			}
			if it, err := byName[n].Get(id); err != nil || string(it.Data) != "payload" {
				t.Errorf("%s: catalog advertises %s but its store says: %+v, %v", id, n, it, err)
			}
		}
	}
}

// TestDatamanFetchToMintsCappedReplicas checks FetchTo's on-access
// replication: the consumer node gains a replica for persistent-data reuse,
// the replica cap stops further minting, sticky data never moves, and the
// observers see the measured transfer.
func TestDatamanFetchToMintsCappedReplicas(t *testing.T) {
	cat, stores := cluster(t, 4)
	cat.SetReplicaCap(2)
	var mu sync.Mutex
	type move struct {
		from, to string
		mb       float64
	}
	var moves []move
	cat.AddTransferObserver(func(from, to string, sizeMB float64, d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if d <= 0 {
			t.Errorf("observed non-positive transfer duration %v", d)
		}
		moves = append(moves, move{from, to, sizeMB})
	})

	payload := make([]byte, 1<<20) // 1 MB
	if err := cat.Put("grafic/ic", "node0", Persistent, payload); err != nil {
		t.Fatal(err)
	}

	// First remote consumer: bytes move, a replica is minted.
	if _, err := cat.FetchTo("grafic/ic", "node1"); err != nil {
		t.Fatal(err)
	}
	if !cat.HasReplica("grafic/ic", "node1") {
		t.Fatal("FetchTo must publish the consumer-side replica")
	}
	if _, err := stores[1].Get("grafic/ic"); err != nil {
		t.Fatal("replica bytes must land on the consumer store")
	}
	// Local re-read: free, no transfer observed.
	before := len(moves)
	if _, err := cat.FetchTo("grafic/ic", "node1"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(moves) != before {
		t.Errorf("local FetchTo must not observe a transfer, got %v", moves[before:])
	}
	mu.Unlock()
	// Third consumer: cap of 2 already reached — bytes move but no replica.
	if _, err := cat.FetchTo("grafic/ic", "node2"); err != nil {
		t.Fatal(err)
	}
	if cat.ReplicaCount("grafic/ic") != 2 {
		t.Fatalf("replica cap ignored: count %d, want 2", cat.ReplicaCount("grafic/ic"))
	}
	mu.Lock()
	if len(moves) != 2 || moves[0].mb != 1 || moves[0].to != "node1" {
		t.Errorf("observed moves %v, want two 1-MB transfers", moves)
	}
	mu.Unlock()

	// Sticky data is fetched but never re-homed.
	if err := cat.Put("scratch", "node3", Sticky, []byte("pinned")); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.FetchTo("scratch", "node0"); err != nil {
		t.Fatal(err)
	}
	if cat.ReplicaCount("scratch") != 1 {
		t.Fatal("sticky data must not gain replicas via FetchTo")
	}
}

// TestDatamanAutoReplicatorFollowsHotData drives the proactive replicator:
// one remote access is not enough, repeated accesses earn the node a
// replica, and the replica-count cap holds platform-wide.
func TestDatamanAutoReplicatorFollowsHotData(t *testing.T) {
	cat, _ := cluster(t, 4)
	if err := cat.Put("hot", "node0", Persistent, []byte("x")); err != nil {
		t.Fatal(err)
	}
	ar := NewAutoReplicator(cat)
	ar.MaxReplicas = 2
	ar.MinAccesses = 2

	if ar.Note("hot", "node1") {
		t.Fatal("one access must not replicate yet")
	}
	if !ar.Note("hot", "node1") {
		t.Fatal("second access must replicate")
	}
	if !cat.HasReplica("hot", "node1") {
		t.Fatal("replica must exist after the hot threshold")
	}
	// node2 is hot too, but the cap of 2 is already spent.
	ar.Note("hot", "node2")
	if ar.Note("hot", "node2") {
		t.Fatal("cap must stop further replication")
	}
	if cat.ReplicaCount("hot") != 2 {
		t.Fatalf("replica count %d, want 2", cat.ReplicaCount("hot"))
	}
	// Size bookkeeping rides along for the forecasters.
	if mb, ok := cat.SizeMB("hot"); !ok || mb <= 0 {
		t.Fatalf("SizeMB = %v, %v; want recorded positive size", mb, ok)
	}
}
