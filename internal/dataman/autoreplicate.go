package dataman

import "sync"

// AutoReplicator is the proactive half of hot-dataset replication: the
// scheduler notes every remote access (a solve whose input had to travel),
// and once a node has paid for the same dataset enough times the replicator
// pushes a replica there — best-effort, like Replicate, and bounded by a
// replica-count cap so a platform-wide hit never copies a dataset
// everywhere. The forecast loop closes here: data-aware ranking steers jobs
// toward forecast-favoured servers, their repeated accesses mark the dataset
// hot, and the replica follows the jobs.
type AutoReplicator struct {
	Catalog *Catalog
	// MaxReplicas caps a dataset's replica count (default 3).
	MaxReplicas int
	// MinAccesses is how many remote accesses from one node earn it a
	// replica (default 2: the first access already copied the bytes once;
	// the second proves reuse).
	MinAccesses int

	mu     sync.Mutex
	counts map[string]map[string]int // data ID → node → remote accesses
}

// NewAutoReplicator wraps a catalog with the default caps.
func NewAutoReplicator(c *Catalog) *AutoReplicator {
	return &AutoReplicator{Catalog: c, MaxReplicas: 3, MinAccesses: 2}
}

// Note records that node consumed id remotely and replicates when the
// dataset has proven hot there. It returns true when a new replica was
// published; failures (sticky data, dead stores, races with Unpublish) are
// swallowed — replication is an optimisation, never a correctness need.
func (r *AutoReplicator) Note(id, node string) bool {
	maxReplicas, minAccesses := r.MaxReplicas, r.MinAccesses
	if maxReplicas <= 0 {
		maxReplicas = 3
	}
	if minAccesses <= 0 {
		minAccesses = 2
	}
	r.mu.Lock()
	if r.counts == nil {
		r.counts = make(map[string]map[string]int)
	}
	byNode := r.counts[id]
	if byNode == nil {
		byNode = make(map[string]int)
		r.counts[id] = byNode
	}
	byNode[node]++
	hot := byNode[node] >= minAccesses
	if hot {
		byNode[node] = 0 // restart the evidence clock after acting
	}
	r.mu.Unlock()
	if !hot || r.Catalog.HasReplica(id, node) || r.Catalog.ReplicaCount(id) >= maxReplicas {
		return false
	}
	return r.Catalog.Replicate(id, node) == nil
}
