package dataman

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/rpc"
)

// cluster brings up n node stores on the in-process transport plus a catalog
// knowing them all.
func cluster(t *testing.T, n int) (*Catalog, []*Store) {
	t.Helper()
	rpc.ResetLocal()
	t.Cleanup(rpc.ResetLocal)
	cat := NewCatalog()
	var stores []*Store
	for i := 0; i < n; i++ {
		node := fmt.Sprintf("node%d", i)
		st := NewStore(node)
		srv := rpc.NewServer()
		srv.Register(ObjectName, st.Handler())
		addr, err := rpc.ServeLocal("dataman-"+node, srv)
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.AddNode(node, addr); err != nil {
			t.Fatal(err)
		}
		stores = append(stores, st)
	}
	return cat, stores
}

func TestStoreBasics(t *testing.T) {
	s := NewStore("n")
	if err := s.Put("", Persistent, nil); err == nil {
		t.Error("empty ID should fail")
	}
	if err := s.Put("a", Persistent, []byte("x")); err != nil {
		t.Fatal(err)
	}
	it, err := s.Get("a")
	if err != nil || string(it.Data) != "x" {
		t.Fatalf("Get = %+v, %v", it, err)
	}
	if _, err := s.Get("ghost"); err == nil {
		t.Error("missing datum should fail")
	}
	s.Put("b", Sticky, nil)
	if ids := s.IDs(); strings.Join(ids, ",") != "a,b" {
		t.Errorf("IDs = %v", ids)
	}
	s.Delete("a")
	if _, err := s.Get("a"); err == nil {
		t.Error("deleted datum should be gone")
	}
}

func TestPublishLocateFetch(t *testing.T) {
	cat, stores := cluster(t, 3)
	payload := []byte("halo catalog bytes")
	if err := stores[1].Put("halos/1", Persistent, payload); err != nil {
		t.Fatal(err)
	}
	if err := cat.Publish("halos/1", "node1", Persistent); err != nil {
		t.Fatal(err)
	}
	nodes, mode, err := cat.Locate("halos/1")
	if err != nil || len(nodes) != 1 || nodes[0] != "node1" || mode != Persistent {
		t.Fatalf("Locate = %v, %v, %v", nodes, mode, err)
	}
	it, err := cat.Fetch("halos/1")
	if err != nil || !bytes.Equal(it.Data, payload) {
		t.Fatalf("Fetch = %+v, %v", it, err)
	}
	if _, _, err := cat.Locate("ghost"); err == nil {
		t.Error("unpublished datum should not locate")
	}
	if err := cat.Publish("x", "ghostnode", Persistent); err == nil {
		t.Error("publishing on unknown node should fail")
	}
}

func TestReplicatePersistent(t *testing.T) {
	cat, stores := cluster(t, 3)
	stores[0].Put("ic/55", Persistent, []byte("initial conditions"))
	cat.Publish("ic/55", "node0", Persistent)

	if err := cat.Replicate("ic/55", "node2"); err != nil {
		t.Fatal(err)
	}
	if cat.ReplicaCount("ic/55") != 2 {
		t.Errorf("replica count %d, want 2", cat.ReplicaCount("ic/55"))
	}
	// The bytes really moved.
	it, err := stores[2].Get("ic/55")
	if err != nil || string(it.Data) != "initial conditions" {
		t.Fatalf("replica content: %+v, %v", it, err)
	}
	// Idempotent.
	if err := cat.Replicate("ic/55", "node2"); err != nil {
		t.Fatal(err)
	}
	if cat.ReplicaCount("ic/55") != 2 {
		t.Error("re-replication must not duplicate entries")
	}
	if err := cat.Replicate("ic/55", "ghost"); err == nil {
		t.Error("unknown destination should fail")
	}
}

func TestStickyRefusesToMove(t *testing.T) {
	cat, stores := cluster(t, 2)
	stores[0].Put("scratch", Sticky, []byte("pinned"))
	cat.Publish("scratch", "node0", Sticky)
	if err := cat.Replicate("scratch", "node1"); err == nil {
		t.Error("sticky data must refuse replication")
	}
	if cat.ReplicaCount("scratch") != 1 {
		t.Error("sticky replica count must stay 1")
	}
	// Publishing a sticky datum from a second node is identity theft.
	stores[1].Put("scratch", Sticky, []byte("imposter"))
	if err := cat.Publish("scratch", "node1", Sticky); err == nil {
		t.Error("second sticky publisher should be rejected")
	}
}

func TestModeConflictRejected(t *testing.T) {
	cat, stores := cluster(t, 2)
	stores[0].Put("d", Persistent, []byte("x"))
	cat.Publish("d", "node0", Persistent)
	if err := cat.Publish("d", "node1", Sticky); err == nil {
		t.Error("republishing under a different mode should fail")
	}
}

func TestFetchFallsOverDeadReplica(t *testing.T) {
	cat, stores := cluster(t, 3)
	stores[0].Put("r", Persistent, []byte("v"))
	cat.Publish("r", "node0", Persistent)
	if err := cat.Replicate("r", "node1"); err != nil {
		t.Fatal(err)
	}
	// Kill node0's replica content (simulates a lost node store).
	stores[0].Delete("r")
	it, err := cat.Fetch("r")
	if err != nil || string(it.Data) != "v" {
		t.Fatalf("fetch should fall over to node1: %+v, %v", it, err)
	}
}

// TestReplicatePublishFailureDeletesOrphan reproduces the mid-flight race
// Replicate must survive: while the copy is in transit, the datum is
// unpublished everywhere and repinned sticky on another node, so the final
// Publish is refused. The destination store must not keep the orphan bytes.
func TestReplicatePublishFailureDeletesOrphan(t *testing.T) {
	cat, stores := cluster(t, 2)
	if err := stores[0].Put("dat", Persistent, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := cat.Publish("dat", "node0", Persistent); err != nil {
		t.Fatal(err)
	}

	// The destination delegates to a real store, but its Put mutates the
	// catalog before Replicate can publish — the repin landing mid-copy.
	evil := NewStore("evil")
	base := evil.Handler()
	srv := rpc.NewServer()
	srv.Register(ObjectName, func(method string, body []byte) ([]byte, error) {
		out, err := base(method, body)
		if method == "Put" && err == nil {
			if err := cat.Unpublish("dat", "node0"); err != nil {
				t.Error(err)
			}
			if err := cat.Publish("dat", "node1", Sticky); err != nil {
				t.Error(err)
			}
		}
		return out, err
	})
	addr, err := rpc.ServeLocal("dataman-evil", srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddNode("evil", addr); err != nil {
		t.Fatal(err)
	}

	err = cat.Replicate("dat", "evil")
	if err == nil || !strings.Contains(err.Error(), "publishing replica") {
		t.Fatalf("Replicate = %v, want publish refusal", err)
	}
	if _, err := evil.Get("dat"); err == nil {
		t.Fatal("orphan replica left on the destination store after the failed publish")
	}
	nodes, mode, err := cat.Locate("dat")
	if err != nil || mode != Sticky || len(nodes) != 1 || nodes[0] != "node1" {
		t.Fatalf("catalog after the race: nodes=%v mode=%v err=%v", nodes, mode, err)
	}
}

// TestReplicateConsistencyUnderRace hammers concurrent Replicate, Unpublish
// and Fetch on one datum; run under -race. The invariant: every replica the
// catalog advertises is actually fetchable from its store.
func TestReplicateConsistencyUnderRace(t *testing.T) {
	cat, stores := cluster(t, 3)
	if err := stores[0].Put("dat", Persistent, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := cat.Publish("dat", "node0", Persistent); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for _, target := range []string{"node1", "node2"} {
		target := target
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_ = cat.Replicate("dat", target) // may race an Unpublish; must stay consistent
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			_ = cat.Unpublish("dat", "node1")
			_ = cat.Unpublish("dat", "node2")
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if it, err := cat.Fetch("dat"); err == nil && string(it.Data) != "payload" {
				t.Errorf("fetched corrupt replica: %q", it.Data)
			}
		}
	}()
	wg.Wait()

	byName := map[string]*Store{"node0": stores[0], "node1": stores[1], "node2": stores[2]}
	nodes, _, err := cat.Locate("dat")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if it, err := byName[n].Get("dat"); err != nil || string(it.Data) != "payload" {
			t.Fatalf("catalog advertises %s but its store says: %+v, %v", n, it, err)
		}
	}
}
