package dataman

import (
	"repro/internal/rpc"
)

// CatalogObjectName is the rpc object under which a hosted catalog answers.
const CatalogObjectName = "datacatalog"

// Access is the catalog surface the SeD-side data plane needs: locating and
// sizing inputs for estimation, fetching them for solves, and publishing
// outputs. *Catalog satisfies it in-process; *Remote satisfies it over rpc,
// which is how a standalone dietsed joins a hosted catalog.
type Access interface {
	AddNode(node, addr string) error
	Publish(id, node string, mode Mode) error
	Locate(id string) ([]string, Mode, error)
	SizeMB(id string) (float64, bool)
	FetchTo(id, toNode string) (Item, error)
	ReplicaCount(id string) int
	HasReplica(id, node string) bool
}

var (
	_ Access = (*Catalog)(nil)
	_ Access = (*Remote)(nil)
)

// Wire request/reply shapes. Exported fields keep gob happy; the types stay
// private to the package on both ends.
type (
	nodeReq    struct{ Node, Addr string }
	publishReq struct {
		ID, Node string
		Mode     Mode
	}
	locateReply struct {
		Nodes []string
		Mode  Mode
	}
	sizeReply struct {
		MB float64
		OK bool
	}
	fetchToReq struct{ ID, Node string }
	replicaAsk struct{ ID, Node string }
)

// Handler exposes the catalog over rpc so remote SeDs can share one platform
// catalog. Transfers a remote FetchTo triggers run (and are measured) on the
// hosting side, where the observers live.
func (c *Catalog) Handler() rpc.Handler {
	return rpc.HandlerFunc(map[string]func([]byte) ([]byte, error){
		"AddNode": func(body []byte) ([]byte, error) {
			var req nodeReq
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			if err := c.AddNode(req.Node, req.Addr); err != nil {
				return nil, err
			}
			return rpc.Encode(true)
		},
		"Publish": func(body []byte) ([]byte, error) {
			var req publishReq
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			if err := c.Publish(req.ID, req.Node, req.Mode); err != nil {
				return nil, err
			}
			return rpc.Encode(true)
		},
		"Locate": func(body []byte) ([]byte, error) {
			var id string
			if err := rpc.Decode(body, &id); err != nil {
				return nil, err
			}
			nodes, mode, err := c.Locate(id)
			if err != nil {
				return nil, err
			}
			return rpc.Encode(locateReply{Nodes: nodes, Mode: mode})
		},
		"SizeMB": func(body []byte) ([]byte, error) {
			var id string
			if err := rpc.Decode(body, &id); err != nil {
				return nil, err
			}
			mb, ok := c.SizeMB(id)
			return rpc.Encode(sizeReply{MB: mb, OK: ok})
		},
		"FetchTo": func(body []byte) ([]byte, error) {
			var req fetchToReq
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			it, err := c.FetchTo(req.ID, req.Node)
			if err != nil {
				return nil, err
			}
			return rpc.Encode(it)
		},
		"ReplicaCount": func(body []byte) ([]byte, error) {
			var id string
			if err := rpc.Decode(body, &id); err != nil {
				return nil, err
			}
			return rpc.Encode(c.ReplicaCount(id))
		},
		"HasReplica": func(body []byte) ([]byte, error) {
			var req replicaAsk
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			return rpc.Encode(c.HasReplica(req.ID, req.Node))
		},
	})
}

// Remote is an Access client against a catalog hosted elsewhere.
type Remote struct {
	Addr string // rpc address of the hosting server
}

// AddNode implements Access.
func (r *Remote) AddNode(node, addr string) error {
	var ok bool
	return rpc.Call(r.Addr, CatalogObjectName, "AddNode", nodeReq{Node: node, Addr: addr}, &ok)
}

// Publish implements Access.
func (r *Remote) Publish(id, node string, mode Mode) error {
	var ok bool
	return rpc.Call(r.Addr, CatalogObjectName, "Publish", publishReq{ID: id, Node: node, Mode: mode}, &ok)
}

// Locate implements Access.
func (r *Remote) Locate(id string) ([]string, Mode, error) {
	var reply locateReply
	if err := rpc.Call(r.Addr, CatalogObjectName, "Locate", id, &reply); err != nil {
		return nil, Persistent, err
	}
	return reply.Nodes, reply.Mode, nil
}

// SizeMB implements Access.
func (r *Remote) SizeMB(id string) (float64, bool) {
	var reply sizeReply
	if err := rpc.Call(r.Addr, CatalogObjectName, "SizeMB", id, &reply); err != nil {
		return 0, false
	}
	return reply.MB, reply.OK
}

// FetchTo implements Access.
func (r *Remote) FetchTo(id, toNode string) (Item, error) {
	var it Item
	if err := rpc.Call(r.Addr, CatalogObjectName, "FetchTo", fetchToReq{ID: id, Node: toNode}, &it); err != nil {
		return Item{}, err
	}
	return it, nil
}

// ReplicaCount implements Access; a transport error reads as unpublished.
func (r *Remote) ReplicaCount(id string) int {
	var n int
	if err := rpc.Call(r.Addr, CatalogObjectName, "ReplicaCount", id, &n); err != nil {
		return 0
	}
	return n
}

// HasReplica implements Access; a transport error reads as absent.
func (r *Remote) HasReplica(id, node string) bool {
	var ok bool
	if err := rpc.Call(r.Addr, CatalogObjectName, "HasReplica", replicaAsk{ID: id, Node: node}, &ok); err != nil {
		return false
	}
	return ok
}
