// Package dataman is the platform data manager behind DIET's persistence
// modes (the DTM/DAGDA component of the real middleware): persistent and
// sticky data live on the server that produced them, a catalog locates every
// replica by DataID, and volatile-free workflows move references instead of
// bytes. Persistent data may be replicated to other nodes on demand; sticky
// data is pinned to its node and refuses to move — exactly the semantics of
// the paper's DIET_PERSISTENT and DIET_STICKY modes.
package dataman

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/rpc"
)

// ObjectName is the rpc object under which a node's store is exposed.
const ObjectName = "dataman"

// Mode mirrors the transferable persistence classes.
type Mode int

// Data modes.
const (
	// Persistent data stays on its node but may be replicated elsewhere.
	Persistent Mode = iota
	// Sticky data stays on its node and refuses replication.
	Sticky
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Sticky {
		return "sticky"
	}
	return "persistent"
}

// Item is one stored datum.
type Item struct {
	ID   string
	Mode Mode
	Data []byte
}

// Store is one node's local data container.
type Store struct {
	node string
	mu   sync.RWMutex
	data map[string]Item
}

// NewStore creates a node-local store labelled with the node name.
func NewStore(node string) *Store {
	return &Store{node: node, data: make(map[string]Item)}
}

// Node returns the owning node's name.
func (s *Store) Node() string { return s.node }

// Put stores a datum locally.
func (s *Store) Put(id string, mode Mode, data []byte) error {
	if id == "" {
		return fmt.Errorf("dataman: datum needs an ID")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[id] = Item{ID: id, Mode: mode, Data: data}
	return nil
}

// Get returns a local datum.
func (s *Store) Get(id string) (Item, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, ok := s.data[id]
	if !ok {
		return Item{}, fmt.Errorf("dataman: %q not on node %s", id, s.node)
	}
	return it, nil
}

// Delete removes a local datum (diet_free_persistent_data).
func (s *Store) Delete(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, id)
}

// IDs lists the locally stored data IDs, sorted.
func (s *Store) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.data))
	for id := range s.data {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Handler exposes the store over rpc.
func (s *Store) Handler() rpc.Handler {
	return rpc.HandlerFunc(map[string]func([]byte) ([]byte, error){
		"Get": func(body []byte) ([]byte, error) {
			var id string
			if err := rpc.Decode(body, &id); err != nil {
				return nil, err
			}
			it, err := s.Get(id)
			if err != nil {
				return nil, err
			}
			return rpc.Encode(it)
		},
		"Put": func(body []byte) ([]byte, error) {
			var it Item
			if err := rpc.Decode(body, &it); err != nil {
				return nil, err
			}
			if err := s.Put(it.ID, it.Mode, it.Data); err != nil {
				return nil, err
			}
			return rpc.Encode(true)
		},
		"Delete": func(body []byte) ([]byte, error) {
			var id string
			if err := rpc.Decode(body, &id); err != nil {
				return nil, err
			}
			s.Delete(id)
			return rpc.Encode(true)
		},
		"IDs": func([]byte) ([]byte, error) {
			return rpc.Encode(s.IDs())
		},
	})
}

// TransferObserver is notified of every measured inter-node data movement
// the catalog performs (Fetch/FetchTo/Replicate). The glue layer feeds these
// samples to a cori.TransferMonitor so the scheduler can forecast transfer
// times; the plain-func shape keeps dataman free of a cori dependency.
type TransferObserver func(from, to string, sizeMB float64, d time.Duration)

// Catalog is the platform-wide replica locator (the "agent side" of the data
// manager): it maps DataID → the nodes holding a replica. It is safe for
// concurrent use.
type Catalog struct {
	mu         sync.RWMutex
	nodes      map[string]string   // node name → store address
	replicas   map[string][]string // data ID → node names, insertion order
	modes      map[string]Mode
	sizes      map[string]float64 // data ID → payload size, MB
	replicaCap int                // FetchTo stops minting replicas at this count (0 = unlimited)
	observers  []TransferObserver
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		nodes:    make(map[string]string),
		replicas: make(map[string][]string),
		modes:    make(map[string]Mode),
		sizes:    make(map[string]float64),
	}
}

// AddTransferObserver registers a callback for measured transfers. Observers
// run synchronously on the fetching goroutine and must be fast.
func (c *Catalog) AddTransferObserver(fn TransferObserver) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observers = append(c.observers, fn)
}

// SetReplicaCap bounds the replicas FetchTo mints on its own (0 = unlimited).
// Explicit Replicate calls are never capped — the operator knows best.
func (c *Catalog) SetReplicaCap(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replicaCap = n
}

// observeTransfer fans a measured movement out to the observers.
func (c *Catalog) observeTransfer(from, to string, sizeMB float64, d time.Duration) {
	c.mu.RLock()
	obs := append([]TransferObserver(nil), c.observers...)
	c.mu.RUnlock()
	for _, fn := range obs {
		fn(from, to, sizeMB, d)
	}
}

// AddNode registers a node's store address.
func (c *Catalog) AddNode(node, addr string) error {
	if node == "" || addr == "" {
		return fmt.Errorf("dataman: node and addr required")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[node] = addr
	return nil
}

// Publish records that node holds a replica of id with the given mode.
func (c *Catalog) Publish(id, node string, mode Mode) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[node]; !ok {
		return fmt.Errorf("dataman: unknown node %q", node)
	}
	if existing, ok := c.modes[id]; ok {
		if existing != mode {
			return fmt.Errorf("dataman: %q already published as %s", id, existing)
		}
		if existing == Sticky {
			for _, n := range c.replicas[id] {
				if n != node {
					return fmt.Errorf("dataman: sticky datum %q is pinned to %s", id, n)
				}
			}
		}
	}
	c.modes[id] = mode
	for _, n := range c.replicas[id] {
		if n == node {
			return nil // already recorded
		}
	}
	c.replicas[id] = append(c.replicas[id], node)
	return nil
}

// Unpublish removes node's replica record of id (the catalog side of
// diet_free_persistent_data). When the last replica goes, the datum's mode is
// forgotten so the ID can be republished afresh.
func (c *Catalog) Unpublish(id, node string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	nodes := c.replicas[id]
	for i, n := range nodes {
		if n != node {
			continue
		}
		c.replicas[id] = append(nodes[:i:i], nodes[i+1:]...)
		if len(c.replicas[id]) == 0 {
			delete(c.replicas, id)
			delete(c.modes, id)
			delete(c.sizes, id)
		}
		return nil
	}
	return fmt.Errorf("dataman: %q has no replica on %s", id, node)
}

// Locate returns the nodes holding id, primary first.
func (c *Catalog) Locate(id string) ([]string, Mode, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	nodes, ok := c.replicas[id]
	if !ok || len(nodes) == 0 {
		return nil, Persistent, fmt.Errorf("dataman: %q not published", id)
	}
	return append([]string(nil), nodes...), c.modes[id], nil
}

// Fetch retrieves id from any replica, nearest-first in catalog order. A
// dead store's Get failure falls through to the next replica; only when
// every replica fails does the last error surface.
func (c *Catalog) Fetch(id string) (Item, error) {
	it, _, err := c.fetchAny(id, "")
	return it, err
}

// fetchAny walks id's replicas, preferring preferNode when it holds one, and
// returns the item plus the node that actually served it. This is the single
// retry loop behind Fetch, FetchTo and Replicate.
func (c *Catalog) fetchAny(id, preferNode string) (Item, string, error) {
	nodes, _, err := c.Locate(id)
	if err != nil {
		return Item{}, "", err
	}
	if preferNode != "" {
		for i, n := range nodes {
			if n == preferNode && i > 0 {
				nodes[0], nodes[i] = nodes[i], nodes[0]
				break
			}
		}
	}
	var lastErr error
	for _, node := range nodes {
		c.mu.RLock()
		addr := c.nodes[node]
		c.mu.RUnlock()
		var it Item
		if err := rpc.Call(addr, ObjectName, "Get", id, &it); err != nil {
			lastErr = err
			continue
		}
		return it, node, nil
	}
	return Item{}, "", fmt.Errorf("dataman: all %d replicas of %q failed: %w", len(nodes), id, lastErr)
}

// FetchTo retrieves id for consumption on toNode, measuring the transfer and
// reporting it to the observers. A local replica is served for free. When the
// bytes had to move and the datum is persistent, a replica is published on
// toNode best-effort — capped by SetReplicaCap — so reuse across a parameter
// sweep finds the data already local; this is the on-access half of
// auto-replication (AutoReplicator is the proactive half).
func (c *Catalog) FetchTo(id, toNode string) (Item, error) {
	t0 := time.Now()
	it, from, err := c.fetchAny(id, toNode)
	if err != nil {
		return Item{}, err
	}
	if from == toNode {
		return it, nil // already local, nothing moved
	}
	sizeMB := c.itemSizeMB(id, it)
	c.observeTransfer(from, toNode, sizeMB, time.Since(t0))

	c.mu.RLock()
	dstAddr, known := c.nodes[toNode]
	rcap := c.replicaCap
	count := len(c.replicas[id])
	c.mu.RUnlock()
	if !known || it.Mode == Sticky || (rcap > 0 && count >= rcap) {
		return it, nil
	}
	// Best-effort local replica, with Replicate's orphan cleanup on a
	// publish refusal.
	var accepted bool
	if err := rpc.Call(dstAddr, ObjectName, "Put", it, &accepted); err != nil {
		return it, nil
	}
	if err := c.Publish(id, toNode, it.Mode); err != nil {
		var deleted bool
		_ = rpc.Call(dstAddr, ObjectName, "Delete", id, &deleted)
	}
	return it, nil
}

// itemSizeMB prefers the recorded payload size, falling back to the fetched
// byte count (and recording it for next time).
func (c *Catalog) itemSizeMB(id string, it Item) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if mb, ok := c.sizes[id]; ok && mb > 0 {
		return mb
	}
	mb := float64(len(it.Data)) / (1 << 20)
	if _, published := c.modes[id]; published && mb > 0 {
		c.sizes[id] = mb
	}
	return mb
}

// SetSizeMB records id's payload size for transfer forecasting; virtual
// platforms (the simulator) and out-of-band producers use it when the
// catalog never sees the bytes themselves.
func (c *Catalog) SetSizeMB(id string, mb float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sizes[id] = mb
}

// SizeMB returns id's recorded payload size; ok is false when unknown.
func (c *Catalog) SizeMB(id string) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	mb, ok := c.sizes[id]
	return mb, ok
}

// Put stores data on node's store and publishes the replica in one step —
// the producer-side convenience the SeD solve path uses.
func (c *Catalog) Put(id, node string, mode Mode, data []byte) error {
	c.mu.RLock()
	addr, ok := c.nodes[node]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("dataman: unknown node %q", node)
	}
	var accepted bool
	if err := rpc.Call(addr, ObjectName, "Put", Item{ID: id, Mode: mode, Data: data}, &accepted); err != nil {
		return fmt.Errorf("dataman: storing %q on %s: %w", id, node, err)
	}
	if err := c.Publish(id, node, mode); err != nil {
		var deleted bool
		_ = rpc.Call(addr, ObjectName, "Delete", id, &deleted)
		return err
	}
	c.SetSizeMB(id, float64(len(data))/(1<<20))
	return nil
}

// Replicate copies a persistent datum onto another node and publishes the
// new replica. Sticky data refuses to move, as the paper's mode demands.
func (c *Catalog) Replicate(id, toNode string) error {
	nodes, mode, err := c.Locate(id)
	if err != nil {
		return err
	}
	if mode == Sticky {
		return fmt.Errorf("dataman: %q is sticky on %s and cannot move", id, nodes[0])
	}
	for _, n := range nodes {
		if n == toNode {
			return nil // already there
		}
	}
	c.mu.RLock()
	dstAddr, ok := c.nodes[toNode]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("dataman: unknown destination node %q", toNode)
	}
	t0 := time.Now()
	it, from, err := c.fetchAny(id, "")
	if err != nil {
		return err
	}
	var accepted bool
	if err := rpc.Call(dstAddr, ObjectName, "Put", it, &accepted); err != nil {
		return fmt.Errorf("dataman: replicating %q to %s: %w", id, toNode, err)
	}
	c.observeTransfer(from, toNode, c.itemSizeMB(id, it), time.Since(t0))
	if err := c.Publish(id, toNode, mode); err != nil {
		// The bytes landed but the catalog refused the record (the datum was
		// unpublished and repinned while the copy was in flight): delete the
		// orphan so store and catalog stay consistent. Best-effort — an
		// unreachable store keeps unreachable bytes, nothing worse.
		var deleted bool
		_ = rpc.Call(dstAddr, ObjectName, "Delete", id, &deleted)
		return fmt.Errorf("dataman: publishing replica of %q on %s: %w", id, toNode, err)
	}
	return nil
}

// HasReplica reports whether node holds a replica of id.
func (c *Catalog) HasReplica(id, node string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, n := range c.replicas[id] {
		if n == node {
			return true
		}
	}
	return false
}

// ReplicaCount returns the number of nodes holding id (0 if unpublished).
func (c *Catalog) ReplicaCount(id string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.replicas[id])
}
