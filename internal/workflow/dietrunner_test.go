package workflow

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/diet"
	"repro/internal/logsvc"
	"repro/internal/metrics"
	"repro/internal/rpc"
)

// figure4Services lists every service RamsesZoomDocument references, with a
// tiny heterogeneous compute cost so the SeD monitors observe distinguishable
// durations.
var figure4Services = map[string]time.Duration{
	"retrieveParameters": 200 * time.Microsecond,
	"grafic1":            time.Millisecond,
	"rollWhiteNoise":     500 * time.Microsecond,
	"grafic2":            time.Millisecond,
	"setupMPI":           200 * time.Microsecond,
	"ramses3d":           5 * time.Millisecond,
	"stopMPI":            200 * time.Microsecond,
	"haloMaker":          2 * time.Millisecond,
	"treeMaker":          time.Millisecond,
	"galaxyMaker":        time.Millisecond,
	"sendResults":        200 * time.Microsecond,
}

// stubDesc describes a one-IN/one-OUT text service.
func stubDesc(t *testing.T, svc string) *diet.ProfileDesc {
	t.Helper()
	d, err := diet.NewProfileDesc(svc, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Set(0, diet.Text, diet.Char)
	d.Set(1, diet.Text, diet.Char)
	return d
}

// deployFigure4 boots an in-process platform whose SeDs all host every
// Figure 4 service as a stub solve: echo "out:<service>" after the service's
// canonical delay.
func deployFigure4(t *testing.T, events diet.EventSink, reg *metrics.Registry) (*diet.Deployment, *diet.Client) {
	t.Helper()
	rpc.ResetLocal()
	t.Cleanup(rpc.ResetLocal)
	mkServices := func() []diet.ServiceSpec {
		var specs []diet.ServiceSpec
		names := make([]string, 0, len(figure4Services))
		for svc := range figure4Services {
			names = append(names, svc)
		}
		sort.Strings(names)
		for _, svc := range names {
			svc, delay := svc, figure4Services[svc]
			specs = append(specs, diet.ServiceSpec{
				Desc: stubDesc(t, svc),
				Solve: func(p *diet.Profile) error {
					time.Sleep(delay)
					return p.SetString(1, "out:"+svc, diet.Volatile)
				},
			})
		}
		return specs
	}
	var seds []diet.SeDSpec
	for _, s := range []struct {
		name  string
		power float64
	}{{"Nancy1", 63.8}, {"Toulouse1", 44.8}, {"Lyon1", 53.8}} {
		seds = append(seds, diet.SeDSpec{
			Name: s.name, Parent: "LA1", Cluster: "g5k",
			Capacity: 1, PowerGFlops: s.power, Services: mkServices(),
		})
	}
	dep, err := diet.Deploy(diet.DeploymentSpec{
		MAName: "MA1", LAs: []string{"LA1"}, SeDs: seds,
		Local: true, Events: events, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dep.Close)
	client, err := dep.Client()
	if err != nil {
		t.Fatal(err)
	}
	return dep, client
}

// ramsesSpecs builds a TaskSpec for every node of the document: the profile
// carries the concatenated dependency outputs IN, the solved OUT string
// becomes the node's output.
func ramsesSpecs(t *testing.T, doc *Document) map[string]TaskSpec {
	t.Helper()
	specs := make(map[string]TaskSpec, len(doc.Nodes))
	for _, n := range doc.Nodes {
		svc := n.Service
		specs[n.ID] = TaskSpec{
			Profile: func(ctx *TaskContext) (*diet.Profile, error) {
				var ins []string
				for dep := range ctx.deps {
					v, _ := ctx.DepOutput(dep)
					s, ok := v.(string)
					if !ok {
						return nil, fmt.Errorf("dep %q of %q produced %T, want string", dep, ctx.ID, v)
					}
					ins = append(ins, s)
				}
				sort.Strings(ins)
				p, err := diet.NewProfile(svc, 0, 0, 1)
				if err != nil {
					return nil, err
				}
				if err := p.SetString(0, strings.Join(ins, "+"), diet.Volatile); err != nil {
					return nil, err
				}
				return p, nil
			},
			Consume: func(ctx *TaskContext, p *diet.Profile, info *diet.CallInfo) error {
				out, err := p.StringArg(1)
				if err != nil {
					return err
				}
				ctx.SetOutput(out)
				return nil
			},
		}
	}
	return specs
}

// TestDietRunnerWorkflowRamsesZoomLive runs the paper's Figure 4 DAG
// end-to-end through diet.Client.Call twice: the first campaign trains every
// chosen SeD's CoRI monitor, the second must price at least one stage from a
// trusted model (the forecast-priced dispatch A11 mirrors) and thread a
// workflow span per node onto the bus.
func TestDietRunnerWorkflowRamsesZoomLive(t *testing.T) {
	bus := logsvc.New(4096)
	reg := metrics.NewRegistry()
	_, client := deployFigure4(t, bus, reg)

	doc := RamsesZoomDocument(2, 3)
	dag, err := FromDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	runner := &DietRunner{
		Client:      client,
		MaxParallel: 3,
		ServiceWork: RamsesStageWork(),
		Events:      bus,
		Metrics:     reg,
		Retries:     1,
	}

	rep1, err := runner.Run(dag, ramsesSpecs(t, doc))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Err != nil {
		t.Fatalf("first campaign failed: %v", rep1.Err)
	}
	if got := rep1.ForecastPricedCount(); got != 0 {
		t.Fatalf("cold platform forecast-priced %d services, want 0", got)
	}

	rep2, err := runner.Run(dag, ramsesSpecs(t, doc))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Err != nil {
		t.Fatalf("second campaign failed: %v", rep2.Err)
	}
	if len(rep2.Results) != dag.Size() {
		t.Fatalf("results for %d nodes, want %d", len(rep2.Results), dag.Size())
	}
	for id, res := range rep2.Results {
		if res.Err != nil || res.Skipped {
			t.Fatalf("node %s: err=%v skipped=%v", id, res.Err, res.Skipped)
		}
	}
	if len(rep2.Calls) != dag.Size() {
		t.Fatalf("%d DIET calls recorded, want one per node (%d)", len(rep2.Calls), dag.Size())
	}
	if got := rep2.ForecastPricedCount(); got == 0 {
		t.Fatal("trained platform priced no stage from a CoRI model")
	}

	// Critical-path weights must decrease downstream and the MPI run must
	// dominate the parallel HaloMaker branches.
	pr := rep2.Priorities
	if !(pr["params"] > pr["ramses3d"] && pr["ramses3d"] > pr["treemaker"] && pr["treemaker"] > pr["send_results"]) {
		t.Fatalf("chain priorities not monotone downstream: %v", pr)
	}
	if pr["ramses3d"] <= pr["halomaker_s1"] {
		t.Fatalf("ramses3d priority %.1f not above halomaker_s1 %.1f", pr["ramses3d"], pr["halomaker_s1"])
	}

	// One workflow span per node per campaign, plus one per whole campaign.
	counts := bus.CountsByKind()
	if want := 2 * (dag.Size() + 1); counts[logsvc.KindWorkflow] != want {
		t.Fatalf("%d workflow spans on the bus, want %d", counts[logsvc.KindWorkflow], want)
	}
	// The runner's metric families are rendered for dietmon.
	rendered := reg.String()
	for _, fam := range []string{"diet_workflow_runs_total", "diet_workflow_nodes_total",
		"diet_workflow_forecast_priced_total", "diet_workflow_makespan_seconds"} {
		if !strings.Contains(rendered, fam) {
			t.Fatalf("metrics output missing %s:\n%s", fam, rendered)
		}
	}
}

// TestDietRunnerWorkflowFailureSkipsDependents: a node whose service no SeD
// offers fails its call after the failover walk; its dependents skip while
// the independent branch completes — the requeue path ends in a clean
// per-node error, not a wedged campaign.
func TestDietRunnerWorkflowFailureSkipsDependents(t *testing.T) {
	bus := logsvc.New(256)
	_, client := deployFigure4(t, bus, nil)

	dag := New("partial")
	if err := dag.Add("a", "grafic1", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := dag.Add("b", "noSuchService", []string{"a"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := dag.Add("c", "treeMaker", []string{"b"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := dag.Add("side", "galaxyMaker", []string{"a"}, nil); err != nil {
		t.Fatal(err)
	}
	doc := dag.Document()
	rep, err := (&DietRunner{Client: client, ServiceWork: RamsesStageWork()}).Run(dag, ramsesSpecs(t, doc))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), `"b"`) {
		t.Fatalf("Report.Err = %v, want node b failure", rep.Err)
	}
	if res := rep.Results["b"]; res.Err == nil {
		t.Fatal("node b should fail: no SeD offers its service")
	}
	if !rep.Results["c"].Skipped {
		t.Fatal("node c should skip after b failed")
	}
	if res := rep.Results["side"]; res.Err != nil || res.Skipped {
		t.Fatalf("independent branch should complete: %+v", res)
	}
}
