// Package workflow is the DIET workflow management system the paper names as
// its first next step (§8): "the workflow management system, which uses an
// XML document to represent the nodes and the data dependencies. The
// simulation execution sequence could be represented as a directed acyclic
// graph". It provides a DAG engine with topological validation and
// event-driven parallel execution, XML (de)serialisation, and a generator
// for the paper's Figure 4 RAMSES workflow.
package workflow

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cori"
)

// Document is the XML representation of a workflow.
type Document struct {
	XMLName xml.Name  `xml:"workflow"`
	Name    string    `xml:"name,attr"`
	Nodes   []NodeDef `xml:"node"`
}

// NodeDef is one XML workflow node: an id, the DIET service (or local
// action) it runs, and the ids it depends on.
type NodeDef struct {
	ID      string `xml:"id,attr"`
	Service string `xml:"service,attr"`
	Depends string `xml:"depends,attr,omitempty"` // space-separated ids
}

// ParseXML reads a workflow document.
func ParseXML(r io.Reader) (*Document, error) {
	var doc Document
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("workflow: parsing XML: %w", err)
	}
	return &doc, nil
}

// WriteXML emits the document with indentation.
func (d *Document) WriteXML(w io.Writer) error {
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(d); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Action is the executable body of a node. The ctx carries completion
// results of the dependencies.
type Action func(ctx *TaskContext) error

// TaskContext is handed to each action.
type TaskContext struct {
	ID      string
	Service string
	// Outputs of completed dependencies, keyed by node id. Actions may store
	// any value for their dependents via SetOutput.
	deps map[string]any
	dag  *DAG
	out  any
}

// DepOutput returns the stored output of a dependency.
func (c *TaskContext) DepOutput(id string) (any, bool) {
	v, ok := c.deps[id]
	return v, ok
}

// SetOutput stores this node's output for its dependents.
func (c *TaskContext) SetOutput(v any) { c.out = v }

// task is a DAG node with its binding.
type task struct {
	def    NodeDef
	deps   []string
	action Action
}

// DAG is an executable workflow.
type DAG struct {
	name  string
	tasks map[string]*task
	order []string // insertion order, for deterministic reporting
}

// New creates an empty DAG.
func New(name string) *DAG {
	return &DAG{name: name, tasks: make(map[string]*task)}
}

// Name returns the workflow name.
func (d *DAG) Name() string { return d.name }

// Add inserts a node with its dependencies and (optionally nil) action.
// Duplicate ids in deps collapse to one edge, so a sloppy document cannot
// skew the readiness counting or the priority weights.
func (d *DAG) Add(id, service string, deps []string, action Action) error {
	if id == "" {
		return fmt.Errorf("workflow: node needs an id")
	}
	if _, dup := d.tasks[id]; dup {
		return fmt.Errorf("workflow: duplicate node id %q", id)
	}
	var uniq []string
	seen := make(map[string]bool, len(deps))
	for _, dep := range deps {
		if !seen[dep] {
			seen[dep] = true
			uniq = append(uniq, dep)
		}
	}
	d.tasks[id] = &task{
		def:    NodeDef{ID: id, Service: service, Depends: strings.Join(uniq, " ")},
		deps:   uniq,
		action: action,
	}
	d.order = append(d.order, id)
	return nil
}

// Bind attaches an action to an existing node (used after FromDocument).
func (d *DAG) Bind(id string, action Action) error {
	t, ok := d.tasks[id]
	if !ok {
		return fmt.Errorf("workflow: no node %q to bind", id)
	}
	t.action = action
	return nil
}

// FromDocument builds an unbound DAG from an XML document.
func FromDocument(doc *Document) (*DAG, error) {
	d := New(doc.Name)
	for _, n := range doc.Nodes {
		var deps []string
		if strings.TrimSpace(n.Depends) != "" {
			deps = strings.Fields(n.Depends)
		}
		if err := d.Add(n.ID, n.Service, deps, nil); err != nil {
			return nil, err
		}
	}
	if _, err := d.TopoOrder(); err != nil {
		return nil, err
	}
	return d, nil
}

// cloneShallow copies the DAG's structure (shared dependency slices, copied
// task records) so a runner can bind and instrument actions per run without
// mutating the caller's graph.
func (d *DAG) cloneShallow() *DAG {
	c := &DAG{name: d.name, tasks: make(map[string]*task, len(d.tasks)), order: append([]string(nil), d.order...)}
	for id, t := range d.tasks {
		tc := *t
		c.tasks[id] = &tc
	}
	return c
}

// Document renders the DAG back to its XML form.
func (d *DAG) Document() *Document {
	doc := &Document{Name: d.name}
	for _, id := range d.order {
		doc.Nodes = append(doc.Nodes, d.tasks[id].def)
	}
	return doc
}

// TopoOrder returns a deterministic topological order, or an error naming a
// cycle or a missing dependency.
func (d *DAG) TopoOrder() ([]string, error) {
	indeg := make(map[string]int, len(d.tasks))
	dependents := make(map[string][]string)
	for id, t := range d.tasks {
		if _, ok := indeg[id]; !ok {
			indeg[id] = 0
		}
		for _, dep := range t.deps {
			if _, ok := d.tasks[dep]; !ok {
				return nil, fmt.Errorf("workflow: node %q depends on unknown node %q", id, dep)
			}
			indeg[id]++
			dependents[dep] = append(dependents[dep], id)
		}
	}
	var ready []string
	for id, n := range indeg {
		if n == 0 {
			ready = append(ready, id)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		next := dependents[id]
		sort.Strings(next)
		for _, dep := range next {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
		sort.Strings(ready)
	}
	if len(order) != len(d.tasks) {
		var stuck []string
		for id, n := range indeg {
			if n > 0 {
				stuck = append(stuck, id)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("workflow: cycle among nodes %v", stuck)
	}
	return order, nil
}

// Result records one node's execution.
type Result struct {
	ID      string
	Start   time.Time
	End     time.Time
	Err     error
	Skipped bool // dependency failed, node never ran
}

// Report is the outcome of a workflow execution.
type Report struct {
	Results map[string]Result
	Err     error // first node error, if any
}

// Execute runs the DAG event-driven: every node starts as soon as all its
// dependencies completed, up to maxParallel nodes at once (0 = unlimited).
// If a node fails, its transitive dependents are skipped but independent
// branches still complete.
func (d *DAG) Execute(maxParallel int) *Report {
	return d.ExecutePrioritized(maxParallel, nil)
}

// runAction invokes one node's action, converting a panic into an ordinary
// node error. A panicking action must fail its node — and skip the node's
// dependents — without taking the whole process down, which matters once
// actions wrap remote solves whose decode paths are not under our control.
func runAction(a Action, ctx *TaskContext) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("workflow: node %q panicked: %v", ctx.ID, r)
		}
	}()
	return a(ctx)
}

// ExecutePrioritized runs the DAG like Execute but, when more nodes are
// ready than maxParallel allows, launches them in decreasing priority order
// (ties and missing entries fall back to topological order). Feeding it the
// forecast-weighted downstream-chain lengths of CriticalPathSeconds gives
// critical-path-first scheduling: the longest predicted chain advances as
// soon as it can while off-critical branches fill the remaining slots.
func (d *DAG) ExecutePrioritized(maxParallel int, priority map[string]float64) *Report {
	order, err := d.TopoOrder()
	if err != nil {
		return &Report{Err: err, Results: map[string]Result{}}
	}
	for _, id := range order {
		if d.tasks[id].action == nil {
			return &Report{Err: fmt.Errorf("workflow: node %q has no action bound", id), Results: map[string]Result{}}
		}
	}
	topoIdx := make(map[string]int, len(order))
	for i, id := range order {
		topoIdx[id] = i
	}

	var (
		mu      sync.Mutex
		results = make(map[string]Result, len(order))
		outputs = make(map[string]any)
		remain  = make(map[string]int, len(order))
		deps    = make(map[string][]string)
		ready   []string // ids whose dependencies completed, not yet launched
		running int
		wg      sync.WaitGroup
	)
	for id, t := range d.tasks {
		remain[id] = len(t.deps)
		for _, dep := range t.deps {
			deps[dep] = append(deps[dep], id)
		}
	}

	// better reports whether a should launch before b.
	better := func(a, b string) bool {
		pa, pb := priority[a], priority[b]
		if pa != pb {
			return pa > pb
		}
		return topoIdx[a] < topoIdx[b]
	}

	var dispatch func() // called with mu held

	launch := func(id string) { // called with mu held
		t := d.tasks[id]
		running++
		ctx := &TaskContext{ID: id, Service: t.def.Service, dag: d, deps: make(map[string]any, len(t.deps))}
		for _, dep := range t.deps {
			ctx.deps[dep] = outputs[dep]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := Result{ID: id, Start: time.Now()}
			res.Err = runAction(t.action, ctx)
			res.End = time.Now()

			mu.Lock()
			defer mu.Unlock()
			running--
			results[id] = res
			if res.Err != nil {
				var skip func(string)
				skip = func(id string) {
					for _, dep := range deps[id] {
						if _, done := results[dep]; done {
							continue
						}
						results[dep] = Result{ID: dep, Skipped: true}
						skip(dep)
					}
				}
				skip(id)
			} else {
				outputs[id] = ctx.out
				for _, dep := range deps[id] {
					if _, skipped := results[dep]; skipped {
						continue
					}
					remain[dep]--
					if remain[dep] == 0 {
						ready = append(ready, dep)
					}
				}
			}
			dispatch()
		}()
	}

	dispatch = func() {
		for len(ready) > 0 && (maxParallel <= 0 || running < maxParallel) {
			best := 0
			for i := 1; i < len(ready); i++ {
				if better(ready[i], ready[best]) {
					best = i
				}
			}
			id := ready[best]
			ready = append(ready[:best], ready[best+1:]...)
			launch(id)
		}
	}

	mu.Lock()
	for _, id := range order {
		if remain[id] == 0 {
			ready = append(ready, id)
		}
	}
	dispatch()
	mu.Unlock()
	wg.Wait()

	report := &Report{Results: results}
	for _, id := range order {
		if r, ok := results[id]; ok && r.Err != nil {
			report.Err = fmt.Errorf("workflow: node %q failed: %w", id, r.Err)
			break
		}
	}
	return report
}

// CriticalPathSeconds prices every node's longest downstream chain: the
// node's own predicted duration (price, typically a CoRI forecast of its
// service) plus the most expensive chain among its dependents. Handing the
// map to ExecutePrioritized launches ready nodes critical-path-first.
func (d *DAG) CriticalPathSeconds(price func(NodeDef) float64) (map[string]float64, error) {
	if _, err := d.TopoOrder(); err != nil {
		return nil, err
	}
	seconds := make(map[string]float64, len(d.tasks))
	dependents := make(map[string][]string, len(d.tasks))
	for id, t := range d.tasks {
		seconds[id] = price(t.def)
		for _, dep := range t.deps {
			dependents[dep] = append(dependents[dep], id)
		}
	}
	return cori.ChainPrices(seconds, dependents)
}

// CriticalPathLen returns the number of nodes on the longest dependency
// chain, a cheap parallelism diagnostic.
func (d *DAG) CriticalPathLen() (int, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return 0, err
	}
	depth := make(map[string]int, len(order))
	longest := 0
	for _, id := range order {
		dd := 1
		for _, dep := range d.tasks[id].deps {
			if depth[dep]+1 > dd {
				dd = depth[dep] + 1
			}
		}
		depth[id] = dd
		if dd > longest {
			longest = dd
		}
	}
	return longest, nil
}

// Size returns the number of nodes.
func (d *DAG) Size() int { return len(d.tasks) }
