package workflow

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// randomDAG builds an acyclic workflow by only allowing edges from lower to
// higher node indices.
func randomDAG(rng *rand.Rand, n int) *DAG {
	d := New("random")
	for i := 0; i < n; i++ {
		var deps []string
		for j := 0; j < i; j++ {
			if rng.Float64() < 0.3 {
				deps = append(deps, fmt.Sprintf("n%d", j))
			}
		}
		d.Add(fmt.Sprintf("n%d", i), "svc", deps, nil)
	}
	return d
}

// TestTopoOrderProperty checks that every topological order places each node
// after all of its dependencies, for random DAGs.
func TestTopoOrderProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%20) + 2
		d := randomDAG(rng, n)
		order, err := d.TopoOrder()
		if err != nil || len(order) != n {
			return false
		}
		pos := make(map[string]int, n)
		for i, id := range order {
			pos[id] = i
		}
		for id, task := range d.tasks {
			for _, dep := range task.deps {
				if pos[dep] >= pos[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestExecuteRunsEachNodeOnceProperty executes random DAGs and checks every
// node ran exactly once with its dependencies already done.
func TestExecuteRunsEachNodeOnceProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%15) + 2
		d := randomDAG(rng, n)
		var mu sync.Mutex
		done := make(map[string]bool, n)
		ok := true
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("n%d", i)
			deps := d.tasks[id].deps
			d.Bind(id, func(ctx *TaskContext) error {
				mu.Lock()
				defer mu.Unlock()
				if done[ctx.ID] {
					ok = false // ran twice
				}
				for _, dep := range deps {
					if !done[dep] {
						ok = false // dependency not finished
					}
				}
				done[ctx.ID] = true
				return nil
			})
		}
		rep := d.Execute(4)
		return rep.Err == nil && len(done) == n && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
