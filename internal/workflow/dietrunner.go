package workflow

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cori"
	"repro/internal/diet"
	"repro/internal/logsvc"
	"repro/internal/metrics"
	"repro/internal/scheduler"
)

// This file routes workflow DAGs through the middleware — the MADAG role the
// paper's conclusion names as DIET's next step. Each node's service becomes
// a diet.Client.Call with a per-node WithWork hint, so a failed server rides
// the client's existing ranked-failover (kill-and-requeue) path; before any
// solve launches, the runner prices every stage from the estimate vectors
// the finding phase returns (the SeDs' CoRI forecasts) and dispatches ready
// nodes critical-path-first under the maxParallel cap.

// Caller is the slice of diet.Client the runner needs; tests may substitute
// a fake platform.
type Caller interface {
	// Call performs one GridRPC call (find, solve, failover).
	Call(p *diet.Profile, opts ...diet.CallOption) (*diet.CallInfo, error)
	// FindServers performs the finding phase alone, returning the ranked
	// servers with their estimate vectors.
	FindServers(service string, workGFlops float64) (*diet.SubmitReply, time.Duration, error)
}

// TaskSpec tells the runner how to solve one DAG node through DIET.
type TaskSpec struct {
	// Profile builds the call's profile from the node's dependency outputs.
	Profile func(ctx *TaskContext) (*diet.Profile, error)
	// Consume extracts the node's output from the solved profile (via
	// ctx.SetOutput). When nil, the solved profile itself becomes the
	// node's output for its dependents.
	Consume func(ctx *TaskContext, p *diet.Profile, info *diet.CallInfo) error
	// WorkGFlops is this node's scheduler hint; 0 falls back to the
	// runner's ServiceWork table for the node's service.
	WorkGFlops float64
}

// DietRunner executes workflow DAGs through a DIET platform.
type DietRunner struct {
	Client Caller
	// MaxParallel caps concurrently in-flight nodes (0 = unlimited).
	MaxParallel int
	// ServiceWork maps service name → default work hint in GFlops for
	// nodes whose TaskSpec carries no explicit estimate.
	ServiceWork map[string]float64
	// MinConfidence is the forecast staleness floor for pricing
	// (0 = scheduler.DefaultMinConfidence, the floor the policies share).
	MinConfidence float64
	// Retries re-runs a node's whole call (fresh finding phase included)
	// after the ranked-failover walk inside Call has exhausted every
	// offered server — the workflow-level requeue.
	Retries int
	// Events optionally receives a workflow span per node and per run,
	// alongside the submit/solve/complete spans the call path emits — the
	// Gantt rows dietmon renders.
	Events diet.EventSink
	// Metrics optionally receives the diet_workflow_* families.
	Metrics *metrics.Registry
}

// RunReport is a Report plus the runner's scheduling context.
type RunReport struct {
	*Report
	RunID string
	// Priorities holds each node's forecast-weighted longest downstream
	// chain in seconds — the launch order among simultaneously ready nodes.
	Priorities map[string]float64
	// PriceS is the predicted duration each DIET node was priced at.
	PriceS map[string]float64
	// ForecastPriced reports, per service, whether the price came from a
	// trusted CoRI model (true) or fell back to advertised power (false).
	ForecastPriced map[string]bool
	// Calls holds the CallInfo of every completed DIET node.
	Calls map[string]*diet.CallInfo
	// MakespanS is the wall-clock length of the whole execution.
	MakespanS float64
}

// ForecastPricedCount counts the services priced from a trusted model.
func (r *RunReport) ForecastPricedCount() int {
	n := 0
	for _, byModel := range r.ForecastPriced {
		if byModel {
			n++
		}
	}
	return n
}

// runSeq distinguishes runs within one process for span identities.
var runSeq atomic.Int64

// workFor resolves a node's work hint: spec override, then service table.
func (r *DietRunner) workFor(service string, spec TaskSpec) float64 {
	if spec.WorkGFlops > 0 {
		return spec.WorkGFlops
	}
	return r.ServiceWork[service]
}

// publishSpan mirrors the middleware's sink contract: sinks that understand
// spans get the structured form; any other EventSink gets a flat event.
func (r *DietRunner) publishSpan(requestID, service, detail string, start, end time.Time) {
	if r.Events == nil {
		return
	}
	sp := logsvc.Span{
		RequestID: requestID, Component: "workflow", Kind: logsvc.KindWorkflow,
		Service: service, Detail: detail,
		StartNanos: start.UnixNano(), EndNanos: end.UnixNano(),
	}
	if ss, ok := r.Events.(logsvc.SpanSink); ok {
		ss.PublishSpan(sp)
		return
	}
	r.Events.Publish(sp.Component, sp.Kind,
		fmt.Sprintf("req=%s svc=%s dur=%s %s", sp.RequestID, sp.Service, end.Sub(start), sp.Detail))
}

// Run executes the DAG through DIET: nodes named in specs are solved with
// Client.Call (per-node WithWork hints, ranked failover, optional
// workflow-level retries); nodes already bound with DAG.Bind run locally.
// Before anything launches, every DIET stage is priced from one finding
// round trip — the SeDs' CoRI forecasts when trusted, advertised power
// otherwise — and ready nodes launch in decreasing forecast-weighted
// critical-path order under MaxParallel.
func (r *DietRunner) Run(d *DAG, specs map[string]TaskSpec) (*RunReport, error) {
	if r.Client == nil {
		return nil, fmt.Errorf("workflow: DietRunner needs a Client")
	}
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	for id := range specs {
		if _, ok := d.tasks[id]; !ok {
			return nil, fmt.Errorf("workflow: task spec for unknown node %q", id)
		}
	}
	for _, id := range order {
		if _, ok := specs[id]; !ok && d.tasks[id].action == nil {
			return nil, fmt.Errorf("workflow: node %q has neither a bound action nor a task spec", id)
		}
	}
	minConf := r.MinConfidence
	if minConf <= 0 {
		minConf = scheduler.DefaultMinConfidence
	}

	rep := &RunReport{
		RunID:          fmt.Sprintf("wf%d-%s", runSeq.Add(1), d.Name()),
		PriceS:         make(map[string]float64),
		ForecastPriced: make(map[string]bool),
		Calls:          make(map[string]*diet.CallInfo, len(specs)),
	}

	// Price every DIET stage with one finding round trip per service, then
	// weigh each node's longest downstream chain with the results.
	type pricing struct {
		ests    []scheduler.Estimate
		byModel bool
	}
	services := make(map[string]*pricing)
	for _, id := range order {
		spec, ok := specs[id]
		if !ok {
			continue
		}
		svc := d.tasks[id].def.Service
		pr, ok := services[svc]
		if !ok {
			// Pricing is advisory: a service nobody offers (or a transient
			// finding failure) prices at zero and fails — or recovers — as an
			// ordinary node-level call, skipping only its own dependents.
			pr = &pricing{}
			if reply, _, err := r.Client.FindServers(svc, r.workFor(svc, spec)); err == nil {
				pr.ests = reply.Estimates
			}
			services[svc] = pr
		}
		sec, byModel := cori.BestEstimateSeconds(pr.ests, r.workFor(svc, spec), minConf)
		rep.PriceS[id] = sec
		if byModel {
			pr.byModel = true
		}
	}
	for svc, pr := range services {
		rep.ForecastPriced[svc] = pr.byModel
	}
	rep.Priorities, err = d.CriticalPathSeconds(func(def NodeDef) float64 {
		return rep.PriceS[def.ID] // local nodes weigh nothing
	})
	if err != nil {
		return nil, err
	}

	var (
		mNodes    metrics.CounterVec
		mNodeSec  metrics.HistogramVec
		mPriced   metrics.CounterVec
		mRuns     metrics.CounterVec
		mMakespan metrics.GaugeVec
	)
	if r.Metrics != nil {
		mRuns = r.Metrics.NewCounter("diet_workflow_runs_total",
			"Workflow DAG executions started, by workflow name.", "workflow")
		mNodes = r.Metrics.NewCounter("diet_workflow_nodes_total",
			"Workflow nodes by terminal status (ok, failed, skipped).", "workflow", "status")
		mNodeSec = r.Metrics.NewHistogram("diet_workflow_node_seconds",
			"Per-node execution time, by service.",
			metrics.ExpBuckets(0.001, 4, 12), "service")
		mPriced = r.Metrics.NewCounter("diet_workflow_forecast_priced_total",
			"Stage pricings by source: a trusted CoRI model vs advertised power.", "pricing")
		mMakespan = r.Metrics.NewGauge("diet_workflow_makespan_seconds",
			"Makespan of the last completed run, by workflow name.", "workflow")
		mRuns.With(d.Name()).Inc()
		for _, byModel := range rep.ForecastPriced {
			if byModel {
				mPriced.With("model").Inc()
			} else {
				mPriced.With("power").Inc()
			}
		}
	}

	// Bind the DIET nodes; wrap already-bound local actions so every node
	// emits a workflow span and lands in the metrics. The binding happens on
	// a shallow copy so repeated Runs of one DAG never stack instrumentation.
	var callsMu sync.Mutex
	instrument := func(id, svc string, body Action) Action {
		return func(ctx *TaskContext) error {
			start := time.Now()
			err := body(ctx)
			end := time.Now()
			reqID := rep.RunID + "-" + id
			callsMu.Lock()
			info, called := rep.Calls[id]
			callsMu.Unlock()
			detail := "ok"
			if err != nil {
				detail = "failed: " + err.Error()
			} else if called {
				// Joining the call's own request ID threads the workflow
				// span into the same trace as its submit/solve/complete
				// spans, so dietmon shows the node inside its request.
				reqID = info.RequestID
				detail = fmt.Sprintf("node %s on %s, priority %.1fs", id, info.Server, rep.Priorities[id])
			} else {
				detail = fmt.Sprintf("local node %s", id)
			}
			r.publishSpan(reqID, svc, detail, start, end)
			if r.Metrics != nil {
				if err == nil {
					mNodes.With(d.Name(), "ok").Inc()
				} else {
					mNodes.With(d.Name(), "failed").Inc()
				}
				mNodeSec.With(svc).Observe(end.Sub(start).Seconds())
			}
			return err
		}
	}
	run := d.cloneShallow()
	for _, id := range order {
		t := run.tasks[id]
		spec, ok := specs[id]
		if !ok {
			t.action = instrument(id, t.def.Service, t.action)
			continue
		}
		id, svc, spec := id, t.def.Service, spec
		t.action = instrument(id, svc, func(ctx *TaskContext) error {
			p, err := spec.Profile(ctx)
			if err != nil {
				return fmt.Errorf("building profile for %q: %w", id, err)
			}
			work := r.workFor(svc, spec)
			var info *diet.CallInfo
			for attempt := 0; ; attempt++ {
				info, err = r.Client.Call(p, diet.WithWork(work))
				if err == nil || attempt >= r.Retries {
					break
				}
			}
			if err != nil {
				return err
			}
			callsMu.Lock()
			rep.Calls[id] = info
			callsMu.Unlock()
			if spec.Consume != nil {
				return spec.Consume(ctx, p, info)
			}
			ctx.SetOutput(p)
			return nil
		})
	}

	start := time.Now()
	rep.Report = run.ExecutePrioritized(r.MaxParallel, rep.Priorities)
	end := time.Now()
	rep.MakespanS = end.Sub(start).Seconds()

	skipped := 0
	for _, res := range rep.Results {
		if res.Skipped {
			skipped++
		}
	}
	if r.Metrics != nil {
		for i := 0; i < skipped; i++ {
			mNodes.With(d.Name(), "skipped").Inc()
		}
		mMakespan.With(d.Name()).Set(rep.MakespanS)
	}
	r.publishSpan(rep.RunID, d.Name(),
		fmt.Sprintf("campaign %s: %d nodes, %d skipped, %d forecast-priced services, makespan %.3fs",
			d.Name(), len(order), skipped, rep.ForecastPricedCount(), rep.MakespanS),
		start, end)
	return rep, nil
}
