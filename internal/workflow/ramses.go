package workflow

import "fmt"

// RamsesZoomDocument builds the paper's Figure 4 workflow as an XML document:
//
//	(1) retrieve simulation parameters
//	(2) GRAFIC1 first run (no zoom, no offset)
//	(3) rollWhiteNoise: centring according to the offsets cx, cy, cz
//	(4) GRAFIC1 second run, with offsets
//	(5..) GRAFIC2 per zoom level (when nLevels > 0)
//	(·) set up the MPI environment, RAMSES3d (MPI code), stop the environment
//	(j) HaloMaker on one snapshot per process
//	(j+3) TreeMaker post-processing HaloMaker's outputs
//	(j+4) GalaxyMaker post-processing TreeMaker's outputs
//	(j+5) send the post-processing results back to the client
//
// nLevels is the number of nested zoom boxes (0 reproduces the "if nb levels
// == 0" branch that skips GRAFIC2), nSnapshots the number of RAMSES outputs
// post-processed by HaloMaker.
func RamsesZoomDocument(nLevels, nSnapshots int) *Document {
	doc := &Document{Name: "ramsesZoom"}
	add := func(id, service, depends string) {
		doc.Nodes = append(doc.Nodes, NodeDef{ID: id, Service: service, Depends: depends})
	}
	add("params", "retrieveParameters", "")
	add("grafic1_first", "grafic1", "params")
	add("rollwhitenoise", "rollWhiteNoise", "grafic1_first")
	add("grafic1_second", "grafic1", "rollwhitenoise")

	lastIC := "grafic1_second"
	for l := 1; l <= nLevels; l++ {
		id := fmt.Sprintf("grafic2_l%d", l)
		add(id, "grafic2", lastIC)
		lastIC = id
	}
	add("mpi_setup", "setupMPI", lastIC)
	add("ramses3d", "ramses3d", "mpi_setup")
	add("mpi_stop", "stopMPI", "ramses3d")

	// TreeMaker consumes every HaloMaker output; with no snapshots to
	// post-process it must still wait for the MPI run to stop, or the
	// post-processing chain would start before RAMSES finishes.
	haloDeps := "mpi_stop"
	treeDeps := "mpi_stop"
	var haloIDs string
	for s := 1; s <= nSnapshots; s++ {
		id := fmt.Sprintf("halomaker_s%d", s)
		add(id, "haloMaker", haloDeps)
		if haloIDs != "" {
			haloIDs += " "
		}
		haloIDs += id
	}
	if haloIDs != "" {
		treeDeps = haloIDs
	}
	add("treemaker", "treeMaker", treeDeps)
	add("galaxymaker", "galaxyMaker", "treemaker")
	add("send_results", "sendResults", "galaxymaker")
	return doc
}

// RamsesStageWork maps every Figure 4 service to a canonical work estimate
// in GFlops — the per-node WithWork hints a campaign hands the scheduler.
// The stages are deliberately heterogeneous, like the paper's pipeline: the
// MPI RAMSES run dwarfs everything, the per-snapshot HaloMaker passes are
// mid-weight and embarrassingly parallel, and the bookkeeping stages are
// almost free. Campaigns may scale or override individual entries.
func RamsesStageWork() map[string]float64 {
	return map[string]float64{
		"retrieveParameters": 50,
		"grafic1":            1200,
		"rollWhiteNoise":     400,
		"grafic2":            2500,
		"setupMPI":           100,
		"ramses3d":           240000,
		"stopMPI":            100,
		"haloMaker":          18000,
		"treeMaker":          9000,
		"galaxyMaker":        7000,
		"sendResults":        300,
	}
}
