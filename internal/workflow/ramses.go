package workflow

import "fmt"

// RamsesZoomDocument builds the paper's Figure 4 workflow as an XML document:
//
//	(1) retrieve simulation parameters
//	(2) GRAFIC1 first run (no zoom, no offset)
//	(3) rollWhiteNoise: centring according to the offsets cx, cy, cz
//	(4) GRAFIC1 second run, with offsets
//	(5..) GRAFIC2 per zoom level (when nLevels > 0)
//	(·) set up the MPI environment, RAMSES3d (MPI code), stop the environment
//	(j) HaloMaker on one snapshot per process
//	(j+3) TreeMaker post-processing HaloMaker's outputs
//	(j+4) GalaxyMaker post-processing TreeMaker's outputs
//	(j+5) send the post-processing results back to the client
//
// nLevels is the number of nested zoom boxes (0 reproduces the "if nb levels
// == 0" branch that skips GRAFIC2), nSnapshots the number of RAMSES outputs
// post-processed by HaloMaker.
func RamsesZoomDocument(nLevels, nSnapshots int) *Document {
	doc := &Document{Name: "ramsesZoom"}
	add := func(id, service, depends string) {
		doc.Nodes = append(doc.Nodes, NodeDef{ID: id, Service: service, Depends: depends})
	}
	add("params", "retrieveParameters", "")
	add("grafic1_first", "grafic1", "params")
	add("rollwhitenoise", "rollWhiteNoise", "grafic1_first")
	add("grafic1_second", "grafic1", "rollwhitenoise")

	lastIC := "grafic1_second"
	for l := 1; l <= nLevels; l++ {
		id := fmt.Sprintf("grafic2_l%d", l)
		add(id, "grafic2", lastIC)
		lastIC = id
	}
	add("mpi_setup", "setupMPI", lastIC)
	add("ramses3d", "ramses3d", "mpi_setup")
	add("mpi_stop", "stopMPI", "ramses3d")

	haloDeps := "mpi_stop"
	var haloIDs string
	for s := 1; s <= nSnapshots; s++ {
		id := fmt.Sprintf("halomaker_s%d", s)
		add(id, "haloMaker", haloDeps)
		if haloIDs != "" {
			haloIDs += " "
		}
		haloIDs += id
	}
	add("treemaker", "treeMaker", haloIDs)
	add("galaxymaker", "galaxyMaker", "treemaker")
	add("send_results", "sendResults", "galaxymaker")
	return doc
}
