package workflow

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTopoOrderLinear(t *testing.T) {
	d := New("linear")
	d.Add("a", "s", nil, nil)
	d.Add("b", "s", []string{"a"}, nil)
	d.Add("c", "s", []string{"b"}, nil)
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "a,b,c" {
		t.Errorf("order = %v", order)
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	d := New("cycle")
	d.Add("a", "s", []string{"c"}, nil)
	d.Add("b", "s", []string{"a"}, nil)
	d.Add("c", "s", []string{"b"}, nil)
	if _, err := d.TopoOrder(); err == nil {
		t.Error("cycle should be detected")
	}
}

func TestTopoOrderMissingDep(t *testing.T) {
	d := New("missing")
	d.Add("a", "s", []string{"ghost"}, nil)
	if _, err := d.TopoOrder(); err == nil {
		t.Error("missing dependency should be detected")
	}
}

func TestAddValidation(t *testing.T) {
	d := New("v")
	if err := d.Add("", "s", nil, nil); err == nil {
		t.Error("empty id should fail")
	}
	if err := d.Add("a", "s", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("a", "s", nil, nil); err == nil {
		t.Error("duplicate id should fail")
	}
}

func TestExecuteRespectsDependencies(t *testing.T) {
	d := New("deps")
	var mu sync.Mutex
	var log []string
	record := func(id string) Action {
		return func(ctx *TaskContext) error {
			mu.Lock()
			log = append(log, id)
			mu.Unlock()
			return nil
		}
	}
	d.Add("ic", "grafic", nil, record("ic"))
	d.Add("run", "ramses3d", []string{"ic"}, record("run"))
	d.Add("halo1", "haloMaker", []string{"run"}, record("halo1"))
	d.Add("halo2", "haloMaker", []string{"run"}, record("halo2"))
	d.Add("tree", "treeMaker", []string{"halo1", "halo2"}, record("tree"))

	rep := d.Execute(0)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	pos := map[string]int{}
	for i, id := range log {
		pos[id] = i
	}
	for _, pair := range [][2]string{{"ic", "run"}, {"run", "halo1"}, {"run", "halo2"}, {"halo1", "tree"}, {"halo2", "tree"}} {
		if pos[pair[0]] > pos[pair[1]] {
			t.Errorf("%s ran after %s", pair[0], pair[1])
		}
	}
	if len(rep.Results) != 5 {
		t.Errorf("%d results", len(rep.Results))
	}
}

func TestExecuteParallelBranches(t *testing.T) {
	// Independent branches overlap in time when maxParallel allows.
	d := New("par")
	var concurrent, peak atomic.Int32
	slow := func(ctx *TaskContext) error {
		cur := concurrent.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		concurrent.Add(-1)
		return nil
	}
	for i := 0; i < 4; i++ {
		d.Add(fmt.Sprintf("n%d", i), "s", nil, slow)
	}
	rep := d.Execute(0)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if peak.Load() < 2 {
		t.Errorf("peak concurrency %d, want >= 2", peak.Load())
	}
}

func TestExecuteMaxParallelBound(t *testing.T) {
	d := New("bound")
	var concurrent, peak atomic.Int32
	slow := func(ctx *TaskContext) error {
		cur := concurrent.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		concurrent.Add(-1)
		return nil
	}
	for i := 0; i < 6; i++ {
		d.Add(fmt.Sprintf("n%d", i), "s", nil, slow)
	}
	rep := d.Execute(2)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if peak.Load() > 2 {
		t.Errorf("peak concurrency %d exceeds bound 2", peak.Load())
	}
}

func TestExecuteFailureSkipsDependents(t *testing.T) {
	d := New("fail")
	boom := errors.New("boom")
	var cRan atomic.Bool
	d.Add("a", "s", nil, func(*TaskContext) error { return nil })
	d.Add("b", "s", []string{"a"}, func(*TaskContext) error { return boom })
	d.Add("c", "s", []string{"b"}, func(*TaskContext) error { cRan.Store(true); return nil })
	d.Add("d", "s", []string{"a"}, func(*TaskContext) error { return nil }) // independent branch

	rep := d.Execute(0)
	if rep.Err == nil || !errors.Is(rep.Results["b"].Err, boom) {
		t.Fatalf("failure not reported: %+v", rep.Err)
	}
	if cRan.Load() {
		t.Error("dependent of failed node must not run")
	}
	if !rep.Results["c"].Skipped {
		t.Error("c should be marked skipped")
	}
	if rep.Results["d"].Err != nil || rep.Results["d"].Skipped {
		t.Error("independent branch should still complete")
	}
}

func TestExecuteUnboundAction(t *testing.T) {
	d := New("unbound")
	d.Add("a", "s", nil, nil)
	rep := d.Execute(0)
	if rep.Err == nil {
		t.Error("unbound node should fail the run")
	}
}

func TestOutputsFlowAlongEdges(t *testing.T) {
	d := New("data")
	d.Add("gen", "s", nil, func(ctx *TaskContext) error {
		ctx.SetOutput(21)
		return nil
	})
	var got int
	d.Add("use", "s", []string{"gen"}, func(ctx *TaskContext) error {
		v, ok := ctx.DepOutput("gen")
		if !ok {
			return errors.New("no dep output")
		}
		got = v.(int) * 2
		return nil
	})
	rep := d.Execute(0)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if got != 42 {
		t.Errorf("dataflow result %d, want 42", got)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	doc := RamsesZoomDocument(2, 3)
	var buf strings.Builder
	if err := doc.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseXML(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != doc.Name || len(parsed.Nodes) != len(doc.Nodes) {
		t.Fatalf("round trip: %d nodes vs %d", len(parsed.Nodes), len(doc.Nodes))
	}
	for i := range doc.Nodes {
		if parsed.Nodes[i] != doc.Nodes[i] {
			t.Errorf("node %d: %+v vs %+v", i, parsed.Nodes[i], doc.Nodes[i])
		}
	}
}

func TestFromDocumentValidates(t *testing.T) {
	doc := &Document{Name: "bad", Nodes: []NodeDef{
		{ID: "a", Service: "s", Depends: "b"},
		{ID: "b", Service: "s", Depends: "a"},
	}}
	if _, err := FromDocument(doc); err == nil {
		t.Error("cyclic document should fail")
	}
}

func TestRamsesZoomDocumentShape(t *testing.T) {
	doc := RamsesZoomDocument(3, 4)
	d, err := FromDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	// params, grafic1×2, roll, grafic2×3, mpi setup/stop, ramses3d,
	// halomaker×4, treemaker, galaxymaker, send = 17 nodes.
	if d.Size() != 17 {
		t.Errorf("workflow has %d nodes", d.Size())
	}
	cp, err := d.CriticalPathLen()
	if err != nil {
		t.Fatal(err)
	}
	// params→g1→roll→g1→g2×3→mpi→ramses→mpi_stop→halo→tree→galaxy→send = 14.
	if cp != 14 {
		t.Errorf("critical path %d, want 14", cp)
	}
	// The "no zoom" branch skips GRAFIC2 entirely (paper: "If nb levels == 0").
	flat := RamsesZoomDocument(0, 1)
	for _, n := range flat.Nodes {
		if strings.HasPrefix(n.ID, "grafic2") {
			t.Error("nLevels=0 should have no GRAFIC2 nodes")
		}
	}
}

func TestRamsesWorkflowExecutes(t *testing.T) {
	doc := RamsesZoomDocument(1, 2)
	d, err := FromDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	var mu sync.Mutex
	for _, n := range doc.Nodes {
		id := n.ID
		if err := d.Bind(id, func(ctx *TaskContext) error {
			mu.Lock()
			order = append(order, ctx.ID)
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep := d.Execute(4)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if len(order) != d.Size() {
		t.Errorf("executed %d of %d nodes", len(order), d.Size())
	}
	if order[0] != "params" || order[len(order)-1] != "send_results" {
		t.Errorf("boundary nodes out of place: first %s last %s", order[0], order[len(order)-1])
	}
}

func TestBindUnknownNode(t *testing.T) {
	d := New("bind")
	if err := d.Bind("ghost", func(*TaskContext) error { return nil }); err == nil {
		t.Error("binding unknown node should fail")
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	d := New("diamond")
	d.Add("a", "s", nil, nil)
	d.Add("b", "s", []string{"a"}, nil)
	d.Add("c", "s", []string{"a"}, nil)
	d.Add("d", "s", []string{"b", "c"}, nil)
	cp, err := d.CriticalPathLen()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 3 {
		t.Errorf("critical path %d, want 3", cp)
	}
}
