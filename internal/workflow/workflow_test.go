package workflow

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTopoOrderLinear(t *testing.T) {
	d := New("linear")
	d.Add("a", "s", nil, nil)
	d.Add("b", "s", []string{"a"}, nil)
	d.Add("c", "s", []string{"b"}, nil)
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "a,b,c" {
		t.Errorf("order = %v", order)
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	d := New("cycle")
	d.Add("a", "s", []string{"c"}, nil)
	d.Add("b", "s", []string{"a"}, nil)
	d.Add("c", "s", []string{"b"}, nil)
	if _, err := d.TopoOrder(); err == nil {
		t.Error("cycle should be detected")
	}
}

func TestTopoOrderMissingDep(t *testing.T) {
	d := New("missing")
	d.Add("a", "s", []string{"ghost"}, nil)
	if _, err := d.TopoOrder(); err == nil {
		t.Error("missing dependency should be detected")
	}
}

func TestAddValidation(t *testing.T) {
	d := New("v")
	if err := d.Add("", "s", nil, nil); err == nil {
		t.Error("empty id should fail")
	}
	if err := d.Add("a", "s", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("a", "s", nil, nil); err == nil {
		t.Error("duplicate id should fail")
	}
}

func TestExecuteRespectsDependencies(t *testing.T) {
	d := New("deps")
	var mu sync.Mutex
	var log []string
	record := func(id string) Action {
		return func(ctx *TaskContext) error {
			mu.Lock()
			log = append(log, id)
			mu.Unlock()
			return nil
		}
	}
	d.Add("ic", "grafic", nil, record("ic"))
	d.Add("run", "ramses3d", []string{"ic"}, record("run"))
	d.Add("halo1", "haloMaker", []string{"run"}, record("halo1"))
	d.Add("halo2", "haloMaker", []string{"run"}, record("halo2"))
	d.Add("tree", "treeMaker", []string{"halo1", "halo2"}, record("tree"))

	rep := d.Execute(0)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	pos := map[string]int{}
	for i, id := range log {
		pos[id] = i
	}
	for _, pair := range [][2]string{{"ic", "run"}, {"run", "halo1"}, {"run", "halo2"}, {"halo1", "tree"}, {"halo2", "tree"}} {
		if pos[pair[0]] > pos[pair[1]] {
			t.Errorf("%s ran after %s", pair[0], pair[1])
		}
	}
	if len(rep.Results) != 5 {
		t.Errorf("%d results", len(rep.Results))
	}
}

func TestExecuteParallelBranches(t *testing.T) {
	// Independent branches overlap in time when maxParallel allows.
	d := New("par")
	var concurrent, peak atomic.Int32
	slow := func(ctx *TaskContext) error {
		cur := concurrent.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		concurrent.Add(-1)
		return nil
	}
	for i := 0; i < 4; i++ {
		d.Add(fmt.Sprintf("n%d", i), "s", nil, slow)
	}
	rep := d.Execute(0)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if peak.Load() < 2 {
		t.Errorf("peak concurrency %d, want >= 2", peak.Load())
	}
}

func TestExecuteMaxParallelBound(t *testing.T) {
	d := New("bound")
	var concurrent, peak atomic.Int32
	slow := func(ctx *TaskContext) error {
		cur := concurrent.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		concurrent.Add(-1)
		return nil
	}
	for i := 0; i < 6; i++ {
		d.Add(fmt.Sprintf("n%d", i), "s", nil, slow)
	}
	rep := d.Execute(2)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if peak.Load() > 2 {
		t.Errorf("peak concurrency %d exceeds bound 2", peak.Load())
	}
}

func TestExecuteFailureSkipsDependents(t *testing.T) {
	d := New("fail")
	boom := errors.New("boom")
	var cRan atomic.Bool
	d.Add("a", "s", nil, func(*TaskContext) error { return nil })
	d.Add("b", "s", []string{"a"}, func(*TaskContext) error { return boom })
	d.Add("c", "s", []string{"b"}, func(*TaskContext) error { cRan.Store(true); return nil })
	d.Add("d", "s", []string{"a"}, func(*TaskContext) error { return nil }) // independent branch

	rep := d.Execute(0)
	if rep.Err == nil || !errors.Is(rep.Results["b"].Err, boom) {
		t.Fatalf("failure not reported: %+v", rep.Err)
	}
	if cRan.Load() {
		t.Error("dependent of failed node must not run")
	}
	if !rep.Results["c"].Skipped {
		t.Error("c should be marked skipped")
	}
	if rep.Results["d"].Err != nil || rep.Results["d"].Skipped {
		t.Error("independent branch should still complete")
	}
}

func TestExecuteUnboundAction(t *testing.T) {
	d := New("unbound")
	d.Add("a", "s", nil, nil)
	rep := d.Execute(0)
	if rep.Err == nil {
		t.Error("unbound node should fail the run")
	}
}

func TestOutputsFlowAlongEdges(t *testing.T) {
	d := New("data")
	d.Add("gen", "s", nil, func(ctx *TaskContext) error {
		ctx.SetOutput(21)
		return nil
	})
	var got int
	d.Add("use", "s", []string{"gen"}, func(ctx *TaskContext) error {
		v, ok := ctx.DepOutput("gen")
		if !ok {
			return errors.New("no dep output")
		}
		got = v.(int) * 2
		return nil
	})
	rep := d.Execute(0)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if got != 42 {
		t.Errorf("dataflow result %d, want 42", got)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	doc := RamsesZoomDocument(2, 3)
	var buf strings.Builder
	if err := doc.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseXML(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != doc.Name || len(parsed.Nodes) != len(doc.Nodes) {
		t.Fatalf("round trip: %d nodes vs %d", len(parsed.Nodes), len(doc.Nodes))
	}
	for i := range doc.Nodes {
		if parsed.Nodes[i] != doc.Nodes[i] {
			t.Errorf("node %d: %+v vs %+v", i, parsed.Nodes[i], doc.Nodes[i])
		}
	}
}

func TestFromDocumentValidates(t *testing.T) {
	doc := &Document{Name: "bad", Nodes: []NodeDef{
		{ID: "a", Service: "s", Depends: "b"},
		{ID: "b", Service: "s", Depends: "a"},
	}}
	if _, err := FromDocument(doc); err == nil {
		t.Error("cyclic document should fail")
	}
}

func TestRamsesZoomDocumentShape(t *testing.T) {
	doc := RamsesZoomDocument(3, 4)
	d, err := FromDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	// params, grafic1×2, roll, grafic2×3, mpi setup/stop, ramses3d,
	// halomaker×4, treemaker, galaxymaker, send = 17 nodes.
	if d.Size() != 17 {
		t.Errorf("workflow has %d nodes", d.Size())
	}
	cp, err := d.CriticalPathLen()
	if err != nil {
		t.Fatal(err)
	}
	// params→g1→roll→g1→g2×3→mpi→ramses→mpi_stop→halo→tree→galaxy→send = 14.
	if cp != 14 {
		t.Errorf("critical path %d, want 14", cp)
	}
	// The "no zoom" branch skips GRAFIC2 entirely (paper: "If nb levels == 0").
	flat := RamsesZoomDocument(0, 1)
	for _, n := range flat.Nodes {
		if strings.HasPrefix(n.ID, "grafic2") {
			t.Error("nLevels=0 should have no GRAFIC2 nodes")
		}
	}
}

func TestRamsesWorkflowExecutes(t *testing.T) {
	doc := RamsesZoomDocument(1, 2)
	d, err := FromDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	var mu sync.Mutex
	for _, n := range doc.Nodes {
		id := n.ID
		if err := d.Bind(id, func(ctx *TaskContext) error {
			mu.Lock()
			order = append(order, ctx.ID)
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep := d.Execute(4)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if len(order) != d.Size() {
		t.Errorf("executed %d of %d nodes", len(order), d.Size())
	}
	if order[0] != "params" || order[len(order)-1] != "send_results" {
		t.Errorf("boundary nodes out of place: first %s last %s", order[0], order[len(order)-1])
	}
}

func TestBindUnknownNode(t *testing.T) {
	d := New("bind")
	if err := d.Bind("ghost", func(*TaskContext) error { return nil }); err == nil {
		t.Error("binding unknown node should fail")
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	d := New("diamond")
	d.Add("a", "s", nil, nil)
	d.Add("b", "s", []string{"a"}, nil)
	d.Add("c", "s", []string{"a"}, nil)
	d.Add("d", "s", []string{"b", "c"}, nil)
	cp, err := d.CriticalPathLen()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 3 {
		t.Errorf("critical path %d, want 3", cp)
	}
}

// TestRamsesZoomNoSnapshots is the regression test for the zero-snapshot
// document: treemaker used to be emitted with an empty Depends, detaching the
// post-processing chain from the simulation. With no HaloMaker stages it must
// hang off mpi_stop.
func TestRamsesZoomNoSnapshots(t *testing.T) {
	doc := RamsesZoomDocument(2, 0)
	var tree *NodeDef
	for i := range doc.Nodes {
		if doc.Nodes[i].ID == "treemaker" {
			tree = &doc.Nodes[i]
		}
	}
	if tree == nil {
		t.Fatal("no treemaker node")
	}
	if tree.Depends != "mpi_stop" {
		t.Fatalf("treemaker Depends = %q, want %q", tree.Depends, "mpi_stop")
	}
	d, err := FromDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	if pos["treemaker"] < pos["mpi_stop"] {
		t.Fatalf("treemaker at %d before mpi_stop at %d", pos["treemaker"], pos["mpi_stop"])
	}
}

// TestExecutePanicRecovered: a panicking action must fail its own node and
// skip its dependents — not crash the process.
func TestExecutePanicRecovered(t *testing.T) {
	d := New("panic")
	var sideRan atomic.Bool
	d.Add("a", "s", nil, func(*TaskContext) error { return nil })
	d.Add("bad", "s", []string{"a"}, func(*TaskContext) error { panic("decode blew up") })
	d.Add("child", "s", []string{"bad"}, func(*TaskContext) error { return nil })
	d.Add("side", "s", []string{"a"}, func(*TaskContext) error { sideRan.Store(true); return nil })

	rep := d.Execute(0)
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "panicked") {
		t.Fatalf("Report.Err = %v, want panic converted to an error", rep.Err)
	}
	if err := rep.Results["bad"].Err; err == nil || !strings.Contains(err.Error(), "decode blew up") {
		t.Fatalf("bad node error = %v", err)
	}
	if !rep.Results["child"].Skipped {
		t.Error("dependent of the panicked node should skip")
	}
	if !sideRan.Load() || rep.Results["side"].Err != nil {
		t.Error("independent branch should still complete")
	}
}

// TestExecuteSkipsExactlyTransitiveDependents: one failure must skip its
// transitive closure and nothing else, even through shared nodes.
func TestExecuteSkipsExactlyTransitiveDependents(t *testing.T) {
	d := New("exact")
	ran := make(map[string]*atomic.Bool)
	add := func(id string, deps []string, fail bool) {
		flag := &atomic.Bool{}
		ran[id] = flag
		d.Add(id, "s", deps, func(*TaskContext) error {
			flag.Store(true)
			if fail {
				return errors.New(id + " failed")
			}
			return nil
		})
	}
	add("root", nil, false)
	add("bad", []string{"root"}, true)
	add("mid", []string{"bad"}, false)
	add("leaf", []string{"mid", "ok2"}, false) // shared: skipped via mid even though ok2 succeeds
	add("ok1", []string{"root"}, false)
	add("ok2", []string{"ok1"}, false)

	rep := d.Execute(0)
	wantSkipped := map[string]bool{"mid": true, "leaf": true}
	for id, res := range rep.Results {
		if res.Skipped != wantSkipped[id] {
			t.Errorf("%s skipped=%v, want %v", id, res.Skipped, wantSkipped[id])
		}
		if wantSkipped[id] && ran[id].Load() {
			t.Errorf("%s ran despite a failed transitive dependency", id)
		}
	}
	for _, id := range []string{"root", "ok1", "ok2"} {
		if !ran[id].Load() || rep.Results[id].Err != nil {
			t.Errorf("independent node %s should have completed cleanly", id)
		}
	}
}

// TestAddDuplicateDepsDeduped: duplicate ids in Depends must collapse to one
// edge — double-counting them used to be able to strand the node waiting for
// a completion that can only arrive once.
func TestAddDuplicateDepsDeduped(t *testing.T) {
	d := New("dup")
	d.Add("a", "s", nil, func(ctx *TaskContext) error { ctx.SetOutput("va"); return nil })
	if err := d.Add("b", "s", []string{"a", "a", "a"}, func(ctx *TaskContext) error {
		v, ok := ctx.DepOutput("a")
		if !ok || v != "va" {
			return fmt.Errorf("dep output = %v, %v", v, ok)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if dep := d.Document().Nodes[1].Depends; dep != "a" {
		t.Fatalf("Depends = %q, want deduped %q", dep, "a")
	}
	rep := d.Execute(0)
	if rep.Err != nil {
		t.Fatalf("duplicate deps wedged the run: %v", rep.Err)
	}
}

// TestReportErrDeterministic: with several failing nodes, Report.Err must be
// the first failure in topological order regardless of finish order.
func TestReportErrDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		d := New("multi-fail")
		errA, errB := errors.New("fail-a"), errors.New("fail-b")
		// a fails slowly, b fails instantly: wall-clock order is b then a.
		d.Add("a", "s", nil, func(*TaskContext) error { time.Sleep(2 * time.Millisecond); return errA })
		d.Add("b", "s", nil, func(*TaskContext) error { return errB })
		rep := d.Execute(0)
		if !errors.Is(rep.Err, errA) {
			t.Fatalf("iteration %d: Report.Err = %v, want the topo-first failure %v", i, rep.Err, errA)
		}
		if !errors.Is(rep.Results["b"].Err, errB) {
			t.Fatalf("iteration %d: b's own result lost: %v", i, rep.Results["b"].Err)
		}
	}
}

// TestExecutePrioritizedOrdersReadySet: with one slot, ready nodes must
// launch in decreasing priority, ties broken by topological order.
func TestExecutePrioritizedOrdersReadySet(t *testing.T) {
	d := New("prio")
	var mu sync.Mutex
	var got []string
	mk := func(id string) {
		d.Add(id, "s", nil, func(*TaskContext) error {
			mu.Lock()
			got = append(got, id)
			mu.Unlock()
			return nil
		})
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		mk(id)
	}
	rep := d.ExecutePrioritized(1, map[string]float64{"c": 30, "a": 10, "b": 10})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	// c first (highest), then a and b (tied at 10, topo order), then d (0).
	if want := "c,a,b,d"; strings.Join(got, ",") != want {
		t.Fatalf("launch order %v, want %s", got, want)
	}
}
