package metrics

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StatusFunc writes a component's free-form status page (the /statusz body).
type StatusFunc func(w http.ResponseWriter)

// Handler returns the observability mux of a daemon: /metrics (Prometheus
// text), /statusz (human-readable component status), and the net/http/pprof
// endpoints under /debug/pprof/ for live CPU/heap profiling. statusz may be
// nil.
func Handler(reg *Registry, statusz StatusFunc) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "statusz @ %s\n\n", time.Now().Format(time.RFC3339))
		if statusz != nil {
			statusz(w)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "observability endpoints: /metrics /statusz /debug/pprof/\n")
	})
	return mux
}

// Serve exposes Handler on addr (":0" for ephemeral) in the background and
// returns the bound address and a shutdown func. Daemons opt in with an
// -http flag; serving failures after bind are logged nowhere — the endpoint
// is monitoring, never load-bearing.
func Serve(addr string, reg *Registry, statusz StatusFunc) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, statusz)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
