package metrics

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("solves_total", "solves", "service")
	c.With("zoom1").Inc()
	c.With("zoom1").Add(2)
	c.With("zoom2").Inc()
	if got := c.With("zoom1").Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	c.With("zoom1").Add(-5) // counters are monotone: ignored
	if got := c.With("zoom1").Value(); got != 3 {
		t.Errorf("counter after negative add = %v, want 3", got)
	}
	g := r.NewGauge("queue_depth", "depth")
	g.With().Set(4)
	g.With().Add(-1)
	if got := g.With().Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
}

func TestExpositionDeterministicOrdering(t *testing.T) {
	// Register families and children in scrambled order; exposition must
	// come out sorted by family name, then label values.
	r := NewRegistry()
	b := r.NewCounter("bbb_total", "second", "k")
	a := r.NewCounter("aaa_total", "first", "k")
	b.With("z").Inc()
	b.With("a").Inc()
	a.With("m").Inc()

	first := r.String()
	for i := 0; i < 5; i++ {
		if got := r.String(); got != first {
			t.Fatal("exposition must be deterministic across scrapes")
		}
	}
	iA := strings.Index(first, "aaa_total{")
	iBa := strings.Index(first, `bbb_total{k="a"}`)
	iBz := strings.Index(first, `bbb_total{k="z"}`)
	if !(iA >= 0 && iA < iBa && iBa < iBz) {
		t.Errorf("ordering wrong:\n%s", first)
	}
	if !strings.Contains(first, "# HELP aaa_total first\n# TYPE aaa_total counter\n") {
		t.Errorf("missing HELP/TYPE header:\n%s", first)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("esc_total", `help with \ backslash
and newline`, "path")
	c.With(`C:\tmp "quoted"` + "\nline2").Inc()
	out := r.String()
	want := `esc_total{path="C:\\tmp \"quoted\"\nline2"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaped sample missing.\nwant %s\ngot:\n%s", want, out)
	}
	if !strings.Contains(out, `# HELP esc_total help with \\ backslash\nand newline`) {
		t.Errorf("help escaping wrong:\n%s", out)
	}
	// No raw newline may survive inside any sample or header line.
	for _, l := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(l, "and newline") || strings.HasPrefix(l, "line2") {
			t.Errorf("raw newline leaked into exposition:\n%s", out)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("wait_seconds", "queue wait", []float64{1, 5, 10}, "service")
	w := h.With("zoom2")
	for _, v := range []float64{0.5, 0.7, 3, 7, 100} {
		w.Observe(v)
	}
	if w.Count() != 5 {
		t.Fatalf("count %d, want 5", w.Count())
	}
	if w.Sum() != 111.2 {
		t.Fatalf("sum %v, want 111.2", w.Sum())
	}
	out := r.String()
	for _, want := range []string{
		`wait_seconds_bucket{service="zoom2",le="1"} 2`,
		`wait_seconds_bucket{service="zoom2",le="5"} 3`,
		`wait_seconds_bucket{service="zoom2",le="10"} 4`,
		`wait_seconds_bucket{service="zoom2",le="+Inf"} 5`,
		`wait_seconds_sum{service="zoom2"} 111.2`,
		`wait_seconds_count{service="zoom2"} 5`,
		"# TYPE wait_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulativeness: each bucket's exposed value must be >= the previous.
	var prev int
	for _, le := range []string{`le="1"`, `le="5"`, `le="10"`, `le="+Inf"`} {
		line := lineWith(out, le)
		n, err := lastInt(line)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if n < prev {
			t.Errorf("bucket %s = %d < previous %d (not cumulative)", le, n, prev)
		}
		prev = n
	}
	// An exact boundary value lands in its bucket (le is inclusive).
	w2 := h.With("edge")
	w2.Observe(5)
	out = r.String()
	if !strings.Contains(out, `wait_seconds_bucket{service="edge",le="5"} 1`) {
		t.Errorf("le must be inclusive:\n%s", out)
	}
	if !strings.Contains(out, `wait_seconds_bucket{service="edge",le="1"} 0`) {
		t.Errorf("empty lower bucket must still be exposed:\n%s", out)
	}
}

func TestHistogramDefaultAndExpBuckets(t *testing.T) {
	if got := len(ExpBuckets(0.1, 2, 5)); got != 5 {
		t.Errorf("ExpBuckets n = %d, want 5", got)
	}
	bs := ExpBuckets(1, 10, 3)
	if bs[0] != 1 || bs[1] != 10 || bs[2] != 100 {
		t.Errorf("ExpBuckets = %v", bs)
	}
	if ExpBuckets(-1, 2, 3) != nil || ExpBuckets(1, 1, 3) != nil {
		t.Error("invalid ExpBuckets args must return nil")
	}
	r := NewRegistry()
	h := r.NewHistogram("d_seconds", "durations", nil)
	h.With().Observe(0.2)
	if !strings.Contains(r.String(), `d_seconds_bucket{le="0.5"} 1`) {
		t.Errorf("default buckets not applied:\n%s", r.String())
	}
}

func TestEmptyFamiliesOmitted(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("never_touched_total", "no children")
	if out := r.String(); out != "" {
		t.Errorf("family without children must not be exposed, got:\n%s", out)
	}
}

func TestReregistrationSharesFamily(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("shared_total", "one", "k")
	b := r.NewCounter("shared_total", "other help ignored", "k")
	a.With("x").Inc()
	b.With("x").Inc()
	if got := a.With("x").Value(); got != 2 {
		t.Errorf("re-registered family must share children, got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch must panic")
		}
	}()
	r.NewGauge("shared_total", "wrong kind")
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c", "w")
	h := r.NewHistogram("h_seconds", "h", []float64{1, 10}, "w")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < 1000; i++ {
				c.With(lbl).Inc()
				h.With(lbl).Observe(float64(i % 20))
				if i%100 == 0 {
					_ = r.String()
				}
			}
		}(w)
	}
	wg.Wait()
	var total float64
	for _, lbl := range []string{"a", "b", "c", "d"} {
		total += c.With(lbl).Value()
	}
	if total != 8000 {
		t.Errorf("lost increments: %v, want 8000", total)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("up_total", "liveness").With().Inc()
	h := Handler(r, func(w http.ResponseWriter) { io.WriteString(w, "component: test\n") })
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up_total 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/statusz"); code != 200 || !strings.Contains(body, "component: test") {
		t.Errorf("/statusz = %d %q", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.NewGauge("g", "a gauge").With().Set(1)
	addr, shutdown, err := Serve("127.0.0.1:0", r, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "g 1") {
		t.Errorf("served exposition %q", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
}

// lineWith returns the first exposition line containing the substring.
func lineWith(out, sub string) string {
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, sub) {
			return l
		}
	}
	return ""
}

// lastInt parses the trailing integer sample of an exposition line.
func lastInt(line string) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	return strconv.Atoi(line[i+1:])
}
