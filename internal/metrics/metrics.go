// Package metrics is a dependency-free instrumentation layer with
// Prometheus text exposition: counters, gauges and histograms with label
// vectors, registered on a Registry and scraped through WritePrometheus (or
// the /metrics endpoint of Handler). The hot-path operations (Inc, Add,
// Observe, Set) are a mutex-guarded float update on an already-resolved
// child, so daemons pre-resolve children with With(...) where it matters.
//
// Exposition is deterministic: families in name order, children in
// label-value order, histogram buckets cumulative and ascending — so tests
// can assert on exact scrape output and diffing two scrapes is meaningful.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Kind is the exposition type of a metric family.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// DefBuckets is the default histogram bucketing (seconds), spanning the
// microsecond solves of tests through multi-hour RAMSES runs.
var DefBuckets = []float64{.0001, .001, .01, .1, .5, 1, 5, 30, 60, 300, 1800, 3600, 7200, 14400}

// ExpBuckets returns n buckets starting at start, each factor times the
// previous — the geometric ladders queue waits and durations want.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Registry holds metric families. The zero value is not usable; construct
// with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with its children (one per label-value tuple).
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
}

// child is one (metric, label values) series.
type child struct {
	mu     sync.Mutex
	values []string
	val    float64   // counter/gauge value; histogram sum
	count  uint64    // histogram observation count
	counts []uint64  // per-bucket (non-cumulative) observation counts
	upper  []float64 // bucket upper bounds (shared with family)
}

// Counter is a monotonically increasing series.
type Counter struct{ c *child }

// Inc adds 1.
func (c Counter) Inc() { c.Add(1) }

// Add increases the counter; negative or non-finite deltas are ignored
// (counters are monotone by contract).
func (c Counter) Add(delta float64) {
	if delta < 0 || math.IsNaN(delta) || math.IsInf(delta, 0) {
		return
	}
	c.c.mu.Lock()
	c.c.val += delta
	c.c.mu.Unlock()
}

// Value returns the current count.
func (c Counter) Value() float64 {
	c.c.mu.Lock()
	defer c.c.mu.Unlock()
	return c.c.val
}

// Gauge is a series that can go up and down.
type Gauge struct{ c *child }

// Set replaces the gauge value.
func (g Gauge) Set(v float64) {
	g.c.mu.Lock()
	g.c.val = v
	g.c.mu.Unlock()
}

// Add shifts the gauge value.
func (g Gauge) Add(delta float64) {
	g.c.mu.Lock()
	g.c.val += delta
	g.c.mu.Unlock()
}

// Value returns the current gauge value.
func (g Gauge) Value() float64 {
	g.c.mu.Lock()
	defer g.c.mu.Unlock()
	return g.c.val
}

// Histogram accumulates observations into fixed buckets.
type Histogram struct{ c *child }

// Observe records one observation.
func (h Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.c.mu.Lock()
	h.c.val += v
	h.c.count++
	// Buckets are few (≤ ~20); linear scan beats binary search at this size.
	for i, ub := range h.c.upper {
		if v <= ub {
			h.c.counts[i]++
			break
		}
	}
	h.c.mu.Unlock()
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	return h.c.count
}

// Sum returns the sum of observations.
func (h Histogram) Sum() float64 {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	return h.c.val
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With resolves the child for the given label values (created on first use).
func (v CounterVec) With(labelValues ...string) Counter {
	return Counter{v.f.child(labelValues)}
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// With resolves the child for the given label values (created on first use).
func (v GaugeVec) With(labelValues ...string) Gauge {
	return Gauge{v.f.child(labelValues)}
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// With resolves the child for the given label values (created on first use).
func (v HistogramVec) With(labelValues ...string) Histogram {
	return Histogram{v.f.child(labelValues)}
}

// NewCounter registers a counter family. Registering the same name twice
// returns the existing family (daemons and tests may share wiring paths);
// re-registering with a different kind panics — that is a programming error.
func (r *Registry) NewCounter(name, help string, labels ...string) CounterVec {
	return CounterVec{r.family(name, help, KindCounter, nil, labels)}
}

// NewGauge registers a gauge family.
func (r *Registry) NewGauge(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.family(name, help, KindGauge, nil, labels)}
}

// NewHistogram registers a histogram family with the given bucket upper
// bounds (nil = DefBuckets). Bounds are sorted and deduplicated; the +Inf
// bucket is implicit.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels ...string) HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	uniq := bs[:0]
	for i, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue
		}
		if i > 0 && len(uniq) > 0 && b == uniq[len(uniq)-1] {
			continue
		}
		uniq = append(uniq, b)
	}
	return HistogramVec{r.family(name, help, KindHistogram, uniq, labels)}
}

func (r *Registry) family(name, help string, kind Kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s, was %s", name, kind, f.kind))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...), buckets: buckets,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// childKey joins label values unambiguously (values may contain commas).
func childKey(values []string) string {
	var sb strings.Builder
	for _, v := range values {
		fmt.Fprintf(&sb, "%d:%s|", len(v), v)
	}
	return sb.String()
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{values: append([]string(nil), values...), upper: f.buckets}
	if f.kind == KindHistogram {
		c.counts = make([]uint64, len(f.buckets))
	}
	f.children[key] = c
	return c
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are legal).
func escapeHelp(v string) string {
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// labelString renders {k="v",...} for the given names and values, with an
// optional extra pair appended (histogram le); empty when there are none.
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraK != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, extraK, escapeLabel(extraV))
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatFloat renders a sample value the Prometheus way.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, f := range fams {
		f.render(&sb)
	}
	_, err := w.Write([]byte(sb.String()))
	return err
}

// String renders the registry as the exposition text (tests and /statusz).
func (r *Registry) String() string {
	var sb strings.Builder
	_ = r.WritePrometheus(&sb)
	return sb.String()
}

func (f *family) render(sb *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*child, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return
	}
	fmt.Fprintf(sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(sb, "# TYPE %s %s\n", f.name, f.kind)
	for _, c := range children {
		c.mu.Lock()
		switch f.kind {
		case KindHistogram:
			// Buckets are exposed cumulatively, ascending, +Inf last.
			var cum uint64
			for i, ub := range c.upper {
				cum += c.counts[i]
				fmt.Fprintf(sb, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, c.values, "le", formatFloat(ub)), cum)
			}
			fmt.Fprintf(sb, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, c.values, "le", "+Inf"), c.count)
			fmt.Fprintf(sb, "%s_sum%s %s\n", f.name,
				labelString(f.labels, c.values, "", ""), formatFloat(c.val))
			fmt.Fprintf(sb, "%s_count%s %d\n", f.name,
				labelString(f.labels, c.values, "", ""), c.count)
		default:
			fmt.Fprintf(sb, "%s%s %s\n", f.name,
				labelString(f.labels, c.values, "", ""), formatFloat(c.val))
		}
		c.mu.Unlock()
	}
}
