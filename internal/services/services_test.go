package services

import (
	"strings"
	"testing"

	"repro/internal/diet"
	"repro/internal/halo"
	"repro/internal/ramses"
	"repro/internal/rpc"
)

// tinyConfig keeps service-level integration tests fast.
func tinyConfig() ramses.Config {
	cfg := ramses.DefaultConfig()
	cfg.NPart = 8
	cfg.Astart = 0.1
	cfg.Aout = []float64{0.5, 1.0}
	cfg.StepsPerOutput = 3
	cfg.FoF = halo.Params{LinkingLength: 0.3, MinParticles: 4}
	return cfg
}

func TestDescriptors(t *testing.T) {
	z1 := Zoom1Desc()
	if z1.Service != "ramsesZoom1" || len(z1.Args) != 3 {
		t.Errorf("Zoom1Desc = %+v", z1)
	}
	z2 := Zoom2Desc()
	if z2.Service != "ramsesZoom2" {
		t.Errorf("Zoom2Desc service %q", z2.Service)
	}
	// The paper's layout: alloc("ramsesZoom2", 6, 6, 8).
	if z2.LastIn != 6 || z2.LastInOut != 6 || z2.LastOut != 8 {
		t.Errorf("Zoom2Desc indices (%d,%d,%d), want (6,6,8)", z2.LastIn, z2.LastInOut, z2.LastOut)
	}
	if z2.Args[0].Kind != diet.File || z2.Args[7].Kind != diet.File || z2.Args[8].Kind != diet.Scalar {
		t.Errorf("Zoom2Desc arg kinds wrong: %+v", z2.Args)
	}
}

func TestZoom2ProfileMatchesDescriptor(t *testing.T) {
	p, err := NewZoom2Profile(tinyConfig(), 3, 4, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Zoom2Desc().Matches(p); err != nil {
		t.Errorf("client profile rejected by service descriptor: %v", err)
	}
	// The namelist argument is a real parseable namelist.
	name, content, err := p.FileBytes(0)
	if err != nil || name != "namelist.nml" {
		t.Fatalf("namelist arg: %q, %v", name, err)
	}
	nl, err := ramses.ParseNamelist(strings.NewReader(string(content)))
	if err != nil {
		t.Fatalf("namelist does not parse: %v", err)
	}
	if _, err := ramses.ConfigFromNamelist(nl); err != nil {
		t.Fatalf("namelist does not map to a config: %v", err)
	}
}

func TestSolveZoom1Direct(t *testing.T) {
	p, err := NewZoom1Profile(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	solve := SolveZoom1(t.TempDir())
	if err := solve(p); err != nil {
		t.Fatal(err)
	}
	cat, err := Zoom1Result(p)
	if err != nil {
		t.Fatal(err)
	}
	if cat.NPart != 8*8*8 {
		t.Errorf("catalog NPart %d, want 512", cat.NPart)
	}
}

func TestSolveZoom2Direct(t *testing.T) {
	cfg := tinyConfig()
	p, err := NewZoom2Profile(cfg, 4, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	solve := SolveZoom2(t.TempDir())
	if err := solve(p); err != nil {
		t.Fatal(err)
	}
	name, tarball, err := Zoom2Result(p)
	if err != nil {
		t.Fatal(err)
	}
	if name != "results.tar.gz" || len(tarball) == 0 {
		t.Errorf("tarball %q, %d bytes", name, len(tarball))
	}
}

func TestZoom2BadCenterReportsErrorCode(t *testing.T) {
	cfg := tinyConfig()
	p, err := NewZoom2Profile(cfg, 4, 4, 4, -3) // negative nbBox
	if err != nil {
		t.Fatal(err)
	}
	solve := SolveZoom2(t.TempDir())
	// The middleware call itself succeeds; failure arrives via the error
	// code, as in the paper's design.
	if err := solve(p); err != nil {
		t.Fatalf("solve should not fail at the middleware level: %v", err)
	}
	if _, _, err := Zoom2Result(p); err == nil {
		t.Error("error code should surface through Zoom2Result")
	}
	code, _ := p.ScalarInt(8)
	if code == 0 {
		t.Error("error code should be non-zero")
	}
}

func TestZoom2MalformedNamelistFailsCall(t *testing.T) {
	p, _ := diet.NewProfile("ramsesZoom2", 6, 6, 8)
	p.SetFileBytes(0, "namelist.nml", []byte("this is not a namelist"), diet.Volatile)
	for i := 1; i <= 6; i++ {
		p.SetScalarInt(i, 1, diet.Volatile)
	}
	p.SetFileBytes(7, "", nil, diet.Volatile)
	p.SetScalarInt(8, 0, diet.Volatile)
	solve := SolveZoom2(t.TempDir())
	if err := solve(p); err == nil {
		t.Error("malformed request should be a middleware-level failure")
	}
}

func TestFullCampaignThroughMiddleware(t *testing.T) {
	// The paper's experiment in miniature over the real middleware: one
	// ramsesZoom1, then several ramsesZoom2 on the found halos, over two
	// SeDs with local transport.
	rpc.ResetLocal()
	base := t.TempDir()
	specs := []diet.SeDSpec{}
	for _, name := range []string{"SeD-c1", "SeD-c2"} {
		specs = append(specs, diet.SeDSpec{
			Name: name, Parent: "LA1", Capacity: 1, PowerGFlops: 4,
			Services: []diet.ServiceSpec{
				{Desc: Zoom1Desc(), Solve: SolveZoom1(base)},
				{Desc: Zoom2Desc(), Solve: SolveZoom2(base)},
			},
		})
	}
	d, err := diet.Deploy(diet.DeploymentSpec{
		MAName: "MA-campaign", LAs: []string{"LA1"}, SeDs: specs, Local: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		d.Close()
		rpc.ResetLocal()
	}()
	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()

	// Phase 1.
	p1, err := NewZoom1Profile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call(p1); err != nil {
		t.Fatal(err)
	}
	cat, err := Zoom1Result(p1)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: one request per halo (at most 3), submitted simultaneously.
	n := len(cat.Halos)
	if n > 3 {
		n = 3
	}
	if n == 0 {
		t.Skip("tiny box produced no halos; phase 2 skipped")
	}
	var calls []*diet.AsyncCall
	var profiles []*diet.Profile
	for i := 0; i < n; i++ {
		h := cat.Halos[i]
		cx := int(h.Pos[0] * float64(cfg.NPart))
		cy := int(h.Pos[1] * float64(cfg.NPart))
		cz := int(h.Pos[2] * float64(cfg.NPart))
		p, err := NewZoom2Profile(cfg, cx, cy, cz, 2)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
		calls = append(calls, client.CallAsync(p))
	}
	if err := diet.WaitAll(calls); err != nil {
		t.Fatal(err)
	}
	for i, p := range profiles {
		name, tarball, err := Zoom2Result(p)
		if err != nil {
			t.Errorf("zoom %d: %v", i, err)
			continue
		}
		if name != "results.tar.gz" || len(tarball) == 0 {
			t.Errorf("zoom %d returned empty tarball", i)
		}
	}
	// Both SeDs participated when more than one request was sent.
	if n >= 2 {
		servers := map[string]bool{}
		for _, c := range calls {
			info, _ := c.Wait()
			servers[info.Server] = true
		}
		if len(servers) < 2 {
			t.Logf("round robin used servers %v (2 expected for %d requests)", servers, n)
		}
	}
}
