// Package services defines the two DIET services of the paper and their
// solve functions: ramsesZoom1 (the low-resolution survey producing the halo
// catalog) and ramsesZoom2 (the zoom re-simulation with GALICS
// post-processing, §5.2.1). The ramsesZoom2 profile reproduces the paper's
// argument layout exactly:
//
//	arg 0 (IN,  FILE)   namelist file with the RAMSES parameters
//	arg 1 (IN,  SCALAR) resolution (particles per axis)
//	arg 2 (IN,  SCALAR) size of the initial conditions, Mpc/h
//	arg 3-5 (IN, SCALAR) centre coordinates cx, cy, cz (phase-1 grid cells)
//	arg 6 (IN,  SCALAR) number of zoom levels (nested boxes)
//	arg 7 (OUT, FILE)   results tarball
//	arg 8 (OUT, SCALAR) error code (0 = the file really contains results)
package services

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/diet"
	"repro/internal/halo"
	"repro/internal/ramses"
)

// Service names.
const (
	Zoom1Name = "ramsesZoom1"
	Zoom2Name = "ramsesZoom2"
)

// Zoom1Desc returns the ramsesZoom1 profile descriptor: a namelist IN file,
// an OUT halo-catalog file and an OUT error code.
func Zoom1Desc() *diet.ProfileDesc {
	d, err := diet.NewProfileDesc(Zoom1Name, 0, 0, 2)
	if err != nil {
		panic(err) // static indices; unreachable
	}
	d.Set(0, diet.File, diet.Char)
	d.Set(1, diet.File, diet.Char)
	d.Set(2, diet.Scalar, diet.Int)
	return d
}

// Zoom2Desc returns the ramsesZoom2 profile descriptor, the paper's
// diet_profile_desc_alloc("ramsesZoom2", 6, 6, 8).
func Zoom2Desc() *diet.ProfileDesc {
	d, err := diet.NewProfileDesc(Zoom2Name, 6, 6, 8)
	if err != nil {
		panic(err) // static indices; unreachable
	}
	d.Set(0, diet.File, diet.Char)
	for i := 1; i <= 6; i++ {
		d.Set(i, diet.Scalar, diet.Int)
	}
	d.Set(7, diet.File, diet.Char)
	d.Set(8, diet.Scalar, diet.Int)
	return d
}

var reqCounter atomic.Int64

// scratchDir allocates a unique per-request working directory, the paper's
// per-simulation NFS working directory.
func scratchDir(base, service string) (string, error) {
	n := reqCounter.Add(1)
	dir := filepath.Join(base, fmt.Sprintf("%s-%06d", service, n))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return dir, nil
}

// configFromProfile extracts the RAMSES configuration: the namelist file
// gives the defaults, the scalar arguments override resolution and box size.
func configFromProfile(p *diet.Profile) (ramses.Config, error) {
	_, content, err := p.FileBytes(0)
	if err != nil {
		return ramses.Config{}, fmt.Errorf("services: namelist argument: %w", err)
	}
	nl, err := ramses.ParseNamelist(bytes.NewReader(content))
	if err != nil {
		return ramses.Config{}, fmt.Errorf("services: parsing namelist: %w", err)
	}
	cfg, err := ramses.ConfigFromNamelist(nl)
	if err != nil {
		return ramses.Config{}, fmt.Errorf("services: namelist config: %w", err)
	}
	if resol, err := p.ScalarInt(1); err == nil && resol > 0 {
		cfg.NPart = int(resol)
	}
	if size, err := p.ScalarInt(2); err == nil && size > 0 {
		cfg.Box = float64(size)
	}
	return cfg, cfg.Validate()
}

// SolveZoom1 returns the solve function for ramsesZoom1. Simulation failures
// are reported through the error-code argument (the middleware call itself
// succeeds), exactly like the paper's service.
func SolveZoom1(baseDir string) diet.SolveFunc {
	return func(p *diet.Profile) error {
		cfg, err := configFromProfile(p)
		if err != nil {
			return err // malformed request: a middleware-level failure
		}
		dir, err := scratchDir(baseDir, Zoom1Name)
		if err != nil {
			return err
		}
		res, err := ramses.Phase1(cfg, dir)
		if err != nil {
			p.SetFileBytes(1, "", nil, diet.Volatile)
			p.SetScalarInt(2, 1, diet.Volatile)
			return nil
		}
		var buf bytes.Buffer
		if err := halo.WriteCatalog(&buf, res.Catalog); err != nil {
			return err
		}
		p.SetFileBytes(1, "halos.dat", buf.Bytes(), diet.Volatile)
		p.SetScalarInt(2, 0, diet.Volatile)
		return nil
	}
}

// SolveZoom2 returns the solve function for ramsesZoom2: it runs the nested
// re-simulation around the requested centre and returns the GALICS products
// packed as a tarball.
func SolveZoom2(baseDir string) diet.SolveFunc {
	return func(p *diet.Profile) error {
		cfg, err := configFromProfile(p)
		if err != nil {
			return err
		}
		var coords [3]int64
		for d := 0; d < 3; d++ {
			v, err := p.ScalarInt(3 + d)
			if err != nil {
				return fmt.Errorf("services: centre coordinate %d: %w", d, err)
			}
			coords[d] = v
		}
		nbBox, err := p.ScalarInt(6)
		if err != nil {
			return fmt.Errorf("services: nbBox argument: %w", err)
		}
		// Centre coordinates arrive as cells of the phase-1 grid.
		resol := float64(cfg.NPart)
		center := [3]float64{
			(float64(coords[0]) + 0.5) / resol,
			(float64(coords[1]) + 0.5) / resol,
			(float64(coords[2]) + 0.5) / resol,
		}
		dir, err := scratchDir(baseDir, Zoom2Name)
		if err != nil {
			return err
		}
		res, err := ramses.Phase2(cfg, center, int(nbBox), dir)
		if err != nil {
			// The simulation failed: inform the client through the error
			// code so it knows the file holds no results.
			p.SetFileBytes(7, "", nil, diet.Volatile)
			p.SetScalarInt(8, 1, diet.Volatile)
			return nil
		}
		tarBytes, err := os.ReadFile(res.TarPath)
		if err != nil {
			return err
		}
		p.SetFileBytes(7, "results.tar.gz", tarBytes, diet.Volatile)
		p.SetScalarInt(8, 0, diet.Volatile)
		return nil
	}
}

// Register adds both RAMSES services to a SeD, using baseDir as the working
// area (the paper's NFS directory on the SeD's cluster).
func Register(sed *diet.SeD, baseDir string) error {
	if err := sed.AddService(Zoom1Desc(), SolveZoom1(baseDir)); err != nil {
		return err
	}
	return sed.AddService(Zoom2Desc(), SolveZoom2(baseDir))
}

// NewZoom1Profile builds a client-side ramsesZoom1 profile from a config.
func NewZoom1Profile(cfg ramses.Config) (*diet.Profile, error) {
	p, err := diet.NewProfile(Zoom1Name, 0, 0, 2)
	if err != nil {
		return nil, err
	}
	nml := ramses.NamelistFromConfig(cfg)
	if err := p.SetFileBytes(0, "namelist.nml", []byte(nml), diet.Volatile); err != nil {
		return nil, err
	}
	// OUT arguments are declared with empty values, as the paper requires.
	p.SetFileBytes(1, "", nil, diet.Volatile)
	p.SetScalarInt(2, 0, diet.Volatile)
	return p, nil
}

// Zoom1Result extracts the halo catalog and error code from a solved
// ramsesZoom1 profile.
func Zoom1Result(p *diet.Profile) (*halo.Catalog, error) {
	code, err := p.ScalarInt(2)
	if err != nil {
		return nil, err
	}
	if code != 0 {
		return nil, fmt.Errorf("services: ramsesZoom1 reported error code %d", code)
	}
	_, content, err := p.FileBytes(1)
	if err != nil {
		return nil, err
	}
	return halo.ReadCatalog(bytes.NewReader(content))
}

// NewZoom2Profile builds a client-side ramsesZoom2 profile: the namelist
// from cfg, the resolution/box overrides, the centre cell and the number of
// nested boxes — the nine arguments of §5.2.1.
func NewZoom2Profile(cfg ramses.Config, cx, cy, cz, nbBox int) (*diet.Profile, error) {
	p, err := diet.NewProfile(Zoom2Name, 6, 6, 8)
	if err != nil {
		return nil, err
	}
	nml := ramses.NamelistFromConfig(cfg)
	if err := p.SetFileBytes(0, "namelist.nml", []byte(nml), diet.Volatile); err != nil {
		return nil, err
	}
	p.SetScalarInt(1, int64(cfg.NPart), diet.Volatile)
	p.SetScalarInt(2, int64(cfg.Box), diet.Volatile)
	p.SetScalarInt(3, int64(cx), diet.Volatile)
	p.SetScalarInt(4, int64(cy), diet.Volatile)
	p.SetScalarInt(5, int64(cz), diet.Volatile)
	p.SetScalarInt(6, int64(nbBox), diet.Volatile)
	p.SetFileBytes(7, "", nil, diet.Volatile)
	p.SetScalarInt(8, 0, diet.Volatile)
	return p, nil
}

// Zoom2Result extracts the tarball bytes from a solved ramsesZoom2 profile,
// checking the error code first like the paper's client does.
func Zoom2Result(p *diet.Profile) (name string, tarball []byte, err error) {
	code, err := p.ScalarInt(8)
	if err != nil {
		return "", nil, err
	}
	if code != 0 {
		return "", nil, fmt.Errorf("services: ramsesZoom2 reported error code %d", code)
	}
	return p.FileBytes(7)
}
