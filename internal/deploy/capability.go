package deploy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cori"
	"repro/internal/platform"
	"repro/internal/scheduler"
)

// Capability is one SeD's delivered-power measurement, as produced by the
// CoRI duration-vs-work fit: what the server was observed to sustain, as
// opposed to what its deployment file advertises.
type Capability struct {
	MeasuredGFlops float64 // delivered power; 0 = no usable measurement
	Confidence     float64 // (0,1] trust in the measurement, decaying with staleness
}

// CapabilitySource reports measured capabilities by SeD name. ok is false
// when the source has never observed that SeD, in which case the planner
// falls back to the advertised power.
type CapabilitySource func(sed string) (Capability, bool)

// MonitorSource adapts per-SeD CoRI monitors (keyed by SeD name, as
// simgrid.ExperimentConfig.Monitors and live tooling keep them) to a
// CapabilitySource for one service.
func MonitorSource(monitors map[string]*cori.Monitor, service string) CapabilitySource {
	return func(sed string) (Capability, bool) {
		m := monitors[sed]
		if m == nil {
			return Capability{}, false
		}
		model, ok := m.Model(service)
		if !ok {
			return Capability{}, false
		}
		delivered := model.DeliveredGFlops()
		if delivered <= 0 {
			return Capability{}, false
		}
		return Capability{MeasuredGFlops: delivered, Confidence: model.Confidence}, true
	}
}

// Options tunes plan construction beyond the static topology rules.
type Options struct {
	// Capabilities optionally supplies measured per-SeD delivered power; the
	// plan then places SeDs by effective power — the confidence-weighted
	// blend of measurement and advertisement — instead of the advertised
	// figure alone. Nil keeps the static (advertised-power) behaviour.
	Capabilities CapabilitySource
	// MinConfidence discards measurements whose confidence has decayed below
	// it (default scheduler.DefaultMinConfidence, the floor shared with the
	// forecast-aware policies).
	MinConfidence float64
}

func (o Options) withDefaults() Options {
	if o.MinConfidence <= 0 {
		o.MinConfidence = scheduler.DefaultMinConfidence
	}
	return o
}

// effective blends the advertised power with a measured capability:
// confidence-weighted toward the measurement, falling back to the advertised
// power when there is no trusted measurement. It returns the blended power
// plus the raw measurement and confidence for reporting (both 0 on fallback).
func (o Options) effective(sed string, advertised float64) (eff, measured, conf float64) {
	if o.Capabilities == nil {
		return advertised, 0, 0
	}
	c, ok := o.Capabilities(sed)
	if !ok || c.MeasuredGFlops <= 0 || c.Confidence < o.MinConfidence {
		return advertised, 0, 0
	}
	w := c.Confidence
	if w > 1 {
		w = 1
	}
	return w*c.MeasuredGFlops + (1-w)*advertised, c.MeasuredGFlops, c.Confidence
}

// rankByPower orders SeD names best-first by a power map, ties broken by
// name, and returns 1-based ranks.
func rankByPower(power map[string]float64) map[string]int {
	names := make([]string, 0, len(power))
	for n := range power {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if power[names[i]] != power[names[j]] {
			return power[names[i]] > power[names[j]]
		}
		return names[i] < names[j]
	})
	rank := make(map[string]int, len(names))
	for i, n := range names {
		rank[n] = i + 1
	}
	return rank
}

// Change records one SeD whose placement input changed between the static
// plan and a measured-power replan: its effective power moved, and with it
// its position in the delivered-throughput ordering that decides where work
// lands.
type Change struct {
	SeD      string
	OldPower float64 // advertised power the static plan placed by
	NewPower float64 // confidence-blended effective power after training
	OldRank  int     // 1-based position in the static power ordering
	NewRank  int     // position in the measured ordering
	// OldParent and NewParent record a placement move when the change came
	// from a live-topology diff (DiffLive); both empty in a pure replan
	// power diff.
	OldParent string
	NewParent string
}

// String renders the change the way cmd/deployplan prints it.
func (c Change) String() string {
	if c.NewParent != "" && c.NewParent != c.OldParent {
		return fmt.Sprintf("%s: parent %s → %s at %.1f GFlops",
			c.SeD, c.OldParent, c.NewParent, c.NewPower)
	}
	return fmt.Sprintf("%s: %.1f → %.1f GFlops, rank %d → %d",
		c.SeD, c.OldPower, c.NewPower, c.OldRank, c.NewRank)
}

// Replan rebuilds the topology-aware plan with measured capabilities and
// diffs it against the static plan: which SeDs' effective powers moved
// materially (more than 1%) or changed position in the power ranking. The
// returned plan is the measured one; the change list is what a re-deployment
// would alter — the "exploit richer server information" loop of the paper's
// conclusion closed at the planning layer.
func Replan(d platform.Deployment, opts Options) (*Plan, []Change, error) {
	static, err := TopologyWith(d, Options{})
	if err != nil {
		return nil, nil, err
	}
	measured, err := TopologyWith(d, opts)
	if err != nil {
		return nil, nil, err
	}
	oldPower := make(map[string]float64, len(static.SeDs))
	for _, s := range static.SeDs {
		oldPower[s.Name] = s.Power
	}
	newPower := make(map[string]float64, len(measured.SeDs))
	for _, s := range measured.SeDs {
		newPower[s.Name] = s.Power
	}
	oldRank := rankByPower(oldPower)
	newRank := rankByPower(newPower)
	var changes []Change
	for _, s := range static.SeDs {
		op, np := oldPower[s.Name], newPower[s.Name]
		moved := op > 0 && math.Abs(np-op)/op > 0.01
		if moved || oldRank[s.Name] != newRank[s.Name] {
			changes = append(changes, Change{
				SeD: s.Name, OldPower: op, NewPower: np,
				OldRank: oldRank[s.Name], NewRank: newRank[s.Name],
			})
		}
	}
	sort.Slice(changes, func(i, j int) bool { return changes[i].NewRank < changes[j].NewRank })
	return measured, changes, nil
}
