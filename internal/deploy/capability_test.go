package deploy

import (
	"testing"
	"time"

	"repro/internal/cori"
	"repro/internal/platform"
)

// fixedSource returns the given capabilities by SeD name.
func fixedSource(caps map[string]Capability) CapabilitySource {
	return func(sed string) (Capability, bool) {
		c, ok := caps[sed]
		return c, ok
	}
}

func TestTopologyWithCapabilitiesBlendsPower(t *testing.T) {
	d := platform.PaperDeployment()
	// Nancy1 advertised ≈ 63.8 but measured at 22 with full confidence;
	// Sophia1 measured at 30 with half confidence.
	src := fixedSource(map[string]Capability{
		"Nancy1":  {MeasuredGFlops: 22, Confidence: 1},
		"Sophia1": {MeasuredGFlops: 30, Confidence: 0.5},
	})
	p, err := TopologyWith(d, Options{Capabilities: src})
	if err != nil {
		t.Fatal(err)
	}
	power := p.PowerByName()
	if got := power["Nancy1"]; got < 21.9 || got > 22.1 {
		t.Errorf("Nancy1 effective power %.1f, want ≈22 (full-confidence measurement)", got)
	}
	// Half confidence: midpoint of 30 and the advertised 58.24.
	if got, want := power["Sophia1"], 0.5*30+0.5*58.24; got < want-0.1 || got > want+0.1 {
		t.Errorf("Sophia1 effective power %.1f, want ≈%.1f (half-confidence blend)", got, want)
	}
	// Unmeasured SeDs keep their advertised power.
	if got := power["Toulouse1"]; got != 44.8 {
		t.Errorf("Toulouse1 effective power %.1f, want advertised 44.8", got)
	}
	// The plan lists SeDs best-first by effective power, so the demoted
	// Nancy1 must now trail the unmeasured SeDs.
	if p.SeDs[0].Name == "Nancy1" {
		t.Error("a demoted SeD must not lead the placement order")
	}
	if last := p.SeDs[len(p.SeDs)-1]; last.Name != "Nancy1" {
		t.Errorf("Nancy1 (22 GFlops) should place last, got %s", last.Name)
	}
	// Structure is untouched: same validation rules as the static plan.
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLowConfidenceMeasurementIsIgnored(t *testing.T) {
	d := platform.PaperDeployment()
	src := fixedSource(map[string]Capability{
		"Nancy1": {MeasuredGFlops: 22, Confidence: 0.01}, // below the 0.05 floor
	})
	p, err := TopologyWith(d, Options{Capabilities: src})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PowerByName()["Nancy1"]; got < 63.83 || got > 63.85 {
		t.Errorf("stale measurement must fall back to advertised ≈63.84, got %.2f", got)
	}
}

func TestMonitorSourceDeliveredPower(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }
	// A monitor with work-size spread measures power via the regression fit:
	// duration = work/20 → 20 GFlops delivered.
	fitted := cori.NewMonitor(cori.Config{Now: clock})
	for _, w := range []float64{1000, 2000, 3000, 4000} {
		fitted.Observe(cori.Sample{Service: "svc", WorkGFlops: w,
			Duration: time.Duration(w / 20 * float64(time.Second)), At: now})
	}
	// Constant work: no slope, but mean-work/EWMA still implies ~25 GFlops.
	constant := cori.NewMonitor(cori.Config{Now: clock})
	for i := 0; i < 6; i++ {
		constant.Observe(cori.Sample{Service: "svc", WorkGFlops: 1000,
			Duration: 40 * time.Second, At: now})
	}
	// No work estimates at all: no delivered-power signal.
	blind := cori.NewMonitor(cori.Config{Now: clock})
	blind.Observe(cori.Sample{Service: "svc", Duration: time.Second, At: now})

	src := MonitorSource(map[string]*cori.Monitor{
		"fitted": fitted, "constant": constant, "blind": blind,
	}, "svc")

	if c, ok := src("fitted"); !ok || c.MeasuredGFlops < 19 || c.MeasuredGFlops > 21 {
		t.Errorf("fitted: %+v ok=%v, want ≈20 GFlops", c, ok)
	}
	if c, ok := src("constant"); !ok || c.MeasuredGFlops < 24 || c.MeasuredGFlops > 26 {
		t.Errorf("constant: %+v ok=%v, want ≈25 GFlops via mean-work/EWMA", c, ok)
	}
	if _, ok := src("blind"); ok {
		t.Error("a monitor without work estimates must not report a capability")
	}
	if _, ok := src("absent"); ok {
		t.Error("an unknown SeD must not report a capability")
	}
}

func TestReplanReportsDemotions(t *testing.T) {
	d := platform.PaperDeployment()
	src := fixedSource(map[string]Capability{
		"Nancy1": {MeasuredGFlops: 22, Confidence: 1},
		"Nancy2": {MeasuredGFlops: 22, Confidence: 1},
	})
	plan, changes, err := Replan(d, Options{Capabilities: src})
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) == 0 {
		t.Fatal("demoting the two fastest SeDs must produce changes")
	}
	byName := map[string]Change{}
	for _, c := range changes {
		byName[c.SeD] = c
	}
	n1, ok := byName["Nancy1"]
	if !ok {
		t.Fatalf("changes %v missing Nancy1", changes)
	}
	if n1.NewRank <= n1.OldRank {
		t.Errorf("Nancy1 rank %d → %d, want a demotion", n1.OldRank, n1.NewRank)
	}
	if n1.NewPower >= n1.OldPower {
		t.Errorf("Nancy1 power %.1f → %.1f, want a drop", n1.OldPower, n1.NewPower)
	}
	// The Sophia SeDs (58.24 advertised, unmeasured) move up to ranks 1–2.
	if plan.SeDs[0].Name != "Sophia1" && plan.SeDs[0].Name != "Sophia2" {
		t.Errorf("replanned best SeD %s, want a Sophia SeD", plan.SeDs[0].Name)
	}
}

func TestReplanNoTrainingNoChanges(t *testing.T) {
	_, changes, err := Replan(platform.PaperDeployment(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Fatalf("a capability-less replan must be a no-op, got %v", changes)
	}
}
