// Package deploy plans a DIET hierarchy onto a physical platform — the
// GoDIET role. The paper notes (§3.1) that "for performance reasons, the
// hierarchy of agents should be deployed depending on the underlying network
// topology"; this package encodes that rule — Master Agent at the client's
// site, one Local Agent per cluster, SeDs under their cluster's LA — scores
// plans by the wide-area traffic each scheduling request costs, and renders
// them either as an in-process diet.DeploymentSpec or as the shell commands
// that launch the dietagent/dietsed binaries across machines.
//
// Plans can be static (advertised node powers, the paper's hand-planned
// hierarchy) or measured: an optional CapabilitySource feeds each SeD's
// CoRI-observed delivered power (cori.Model.DeliveredGFlops) into planning,
// blended with the advertised figure by measurement confidence, so
// re-deployments place SeDs where delivered — not advertised — throughput
// is. Replan diffs the two and reports which placements training would
// change.
package deploy

import (
	"fmt"
	"sort"

	"repro/internal/diet"
	"repro/internal/platform"
	"repro/internal/scheduler"
)

// Node is one planned component.
type Node struct {
	Name    string
	Kind    string // "naming", "MA", "LA", "SeD"
	Site    string
	Cluster string // SeDs only
	Parent  string // LAs point at the MA, SeDs at their LA
	// Power is the effective processing power planning placed this node by:
	// the advertised figure in a static plan, the confidence-weighted blend
	// of measurement and advertisement in a measured plan. It is what
	// Spec/Commands hand the live deployment as the SeD's advertised power.
	Power float64
	// MeasuredGFlops and Confidence record the capability the blend used
	// (both 0 in a static plan or when the source had nothing trusted).
	MeasuredGFlops float64
	Confidence     float64
}

// Plan is a complete deployment layout.
type Plan struct {
	Naming Node
	MA     Node
	LAs    []Node
	SeDs   []Node
}

// Topology builds the paper's topology-aware plan from a platform
// deployment: the MA (and naming service) on the MA site, one LA per
// distinct cluster hosting SeDs, each SeD under its cluster's LA.
func Topology(d platform.Deployment) (*Plan, error) {
	return TopologyWith(d, Options{})
}

// TopologyWith is Topology with planning options: when opts carries a
// CapabilitySource the SeDs are placed by effective (measured-blend) power
// and listed best-first, so Spec and Commands advertise delivered
// throughput to the schedulers instead of the deployment file's guess.
func TopologyWith(d platform.Deployment, opts Options) (*Plan, error) {
	if len(d.SeDs) == 0 {
		return nil, fmt.Errorf("deploy: deployment has no SeDs")
	}
	opts = opts.withDefaults()
	p := &Plan{
		Naming: Node{Name: "naming", Kind: "naming", Site: d.MASite},
		MA:     Node{Name: "MA1", Kind: "MA", Site: d.MASite},
	}
	laByCluster := make(map[string]string)
	for _, s := range d.SeDs {
		if _, ok := laByCluster[s.Cluster]; !ok {
			la := "LA-" + s.Cluster
			laByCluster[s.Cluster] = la
			p.LAs = append(p.LAs, Node{Name: la, Kind: "LA", Site: s.Site, Parent: p.MA.Name})
		}
	}
	sort.Slice(p.LAs, func(i, j int) bool { return p.LAs[i].Name < p.LAs[j].Name })
	for _, s := range d.SeDs {
		eff, measured, conf := opts.effective(s.Name, s.PowerGFlops())
		p.SeDs = append(p.SeDs, Node{
			Name: s.Name, Kind: "SeD", Site: s.Site, Cluster: s.Cluster,
			Parent: laByCluster[s.Cluster], Power: eff,
			MeasuredGFlops: measured, Confidence: conf,
		})
	}
	sortSeDsByPower(p.SeDs)
	return p, nil
}

// Flat builds the naive alternative: a single LA co-located with the MA,
// every SeD directly under it — the layout Topology exists to beat.
func Flat(d platform.Deployment) (*Plan, error) {
	return FlatWith(d, Options{})
}

// FlatWith is Flat with planning options (see TopologyWith).
func FlatWith(d platform.Deployment, opts Options) (*Plan, error) {
	if len(d.SeDs) == 0 {
		return nil, fmt.Errorf("deploy: deployment has no SeDs")
	}
	opts = opts.withDefaults()
	p := &Plan{
		Naming: Node{Name: "naming", Kind: "naming", Site: d.MASite},
		MA:     Node{Name: "MA1", Kind: "MA", Site: d.MASite},
		LAs:    []Node{{Name: "LA-flat", Kind: "LA", Site: d.MASite, Parent: "MA1"}},
	}
	for _, s := range d.SeDs {
		eff, measured, conf := opts.effective(s.Name, s.PowerGFlops())
		p.SeDs = append(p.SeDs, Node{
			Name: s.Name, Kind: "SeD", Site: s.Site, Cluster: s.Cluster,
			Parent: "LA-flat", Power: eff,
			MeasuredGFlops: measured, Confidence: conf,
		})
	}
	sortSeDsByPower(p.SeDs)
	return p, nil
}

// sortSeDsByPower lists SeDs by delivered throughput, best first (ties by
// name): the plan's placement order, which Commands and Spec preserve.
func sortSeDsByPower(seds []Node) {
	sort.Slice(seds, func(i, j int) bool {
		if seds[i].Power != seds[j].Power {
			return seds[i].Power > seds[j].Power
		}
		return seds[i].Name < seds[j].Name
	})
}

// PowerByName returns the plan's effective SeD powers keyed by name — the
// map the simulator's PlannedPower mirror and reporting tools consume.
func (p *Plan) PowerByName() map[string]float64 {
	out := make(map[string]float64, len(p.SeDs))
	for _, s := range p.SeDs {
		out[s.Name] = s.Power
	}
	return out
}

// ParentByName returns the plan's SeD parent assignments keyed by name —
// the placement map the live-replanning mirror and DiffLive consume.
func (p *Plan) ParentByName() map[string]string {
	out := make(map[string]string, len(p.SeDs))
	for _, s := range p.SeDs {
		out[s.Name] = s.Parent
	}
	return out
}

// Validate checks structural invariants: unique names, every parent exists,
// LAs parent to the MA, SeDs parent to an LA.
func (p *Plan) Validate() error {
	seen := map[string]string{p.MA.Name: "MA", p.Naming.Name: "naming"}
	las := make(map[string]bool)
	for _, la := range p.LAs {
		if _, dup := seen[la.Name]; dup {
			return fmt.Errorf("deploy: duplicate component name %q", la.Name)
		}
		seen[la.Name] = "LA"
		las[la.Name] = true
		if la.Parent != p.MA.Name {
			return fmt.Errorf("deploy: LA %q parents to %q, want the MA", la.Name, la.Parent)
		}
	}
	if len(p.SeDs) == 0 {
		return fmt.Errorf("deploy: plan has no SeDs")
	}
	for _, s := range p.SeDs {
		if _, dup := seen[s.Name]; dup {
			return fmt.Errorf("deploy: duplicate component name %q", s.Name)
		}
		seen[s.Name] = "SeD"
		if !las[s.Parent] {
			return fmt.Errorf("deploy: SeD %q parents to unknown LA %q", s.Name, s.Parent)
		}
	}
	return nil
}

// WANMessagesPerRequest scores the plan: the number of wide-area messages
// one scheduling request costs during estimate collection (request + reply
// on every link that crosses sites). Lower is better; this is the §3.1
// rationale made quantitative.
func (p *Plan) WANMessagesPerRequest() int {
	siteOf := map[string]string{p.MA.Name: p.MA.Site}
	n := 0
	for _, la := range p.LAs {
		siteOf[la.Name] = la.Site
		if la.Site != p.MA.Site {
			n += 2 // MA → LA request, LA → MA reply
		}
	}
	for _, s := range p.SeDs {
		if s.Site != siteOf[s.Parent] {
			n += 2 // LA → SeD request, SeD → LA reply
		}
	}
	return n
}

// CollectLatency estimates the estimate-collection latency on a platform:
// the slowest MA→LA→SeD round trip, all children queried in parallel.
func (p *Plan) CollectLatency(plat *platform.Platform) float64 {
	siteOf := map[string]string{}
	for _, la := range p.LAs {
		siteOf[la.Name] = la.Site
	}
	worst := 0.0
	for _, s := range p.SeDs {
		laSite := siteOf[s.Parent]
		rtt := 2 * (plat.Latency(p.MA.Site, laSite) + plat.Latency(laSite, s.Site)).Seconds()
		if rtt > worst {
			worst = rtt
		}
	}
	return worst
}

// Spec renders the plan as an in-process deployment the diet package can
// bring up directly; the caller attaches services to each SeD spec.
func (p *Plan) Spec(policy scheduler.Policy, services []diet.ServiceSpec, local bool) (diet.DeploymentSpec, error) {
	if err := p.Validate(); err != nil {
		return diet.DeploymentSpec{}, err
	}
	spec := diet.DeploymentSpec{MAName: p.MA.Name, Policy: policy, Local: local}
	for _, la := range p.LAs {
		spec.LAs = append(spec.LAs, la.Name)
	}
	for _, s := range p.SeDs {
		spec.SeDs = append(spec.SeDs, diet.SeDSpec{
			Name: s.Name, Parent: s.Parent, Cluster: s.Cluster,
			Capacity: 1, PowerGFlops: s.Power, Services: services,
		})
	}
	return spec, nil
}

// Commands renders the plan as the shell command lines that launch it across
// machines with the cmd/dietagent and cmd/dietsed binaries; namingAddr is the
// host:port the naming service will listen on.
func (p *Plan) Commands(namingAddr string) []string {
	out := []string{
		fmt.Sprintf("# on %s", p.MA.Site),
		fmt.Sprintf("dietagent -name %s -kind MA -with-naming -naming-listen %s", p.MA.Name, namingAddr),
	}
	for _, la := range p.LAs {
		out = append(out,
			fmt.Sprintf("# on %s", la.Site),
			fmt.Sprintf("dietagent -name %s -kind LA -parent %s -naming %s", la.Name, la.Parent, namingAddr))
	}
	for _, s := range p.SeDs {
		out = append(out,
			fmt.Sprintf("# on %s (%s)", s.Site, s.Cluster),
			fmt.Sprintf("dietsed -name %s -parent %s -naming %s -power %.1f -cluster %s",
				s.Name, s.Parent, namingAddr, s.Power, s.Cluster))
	}
	return out
}
