package deploy

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cori"
	"repro/internal/diet"
	"repro/internal/platform"
)

// liveTopologyOf builds the diet.TopologyNode a running hierarchy would
// report for a given SeD→parent assignment under one MA.
func liveTopologyOf(ma string, las []string, parentOf map[string]string) diet.TopologyNode {
	root := diet.TopologyNode{Name: ma, Kind: "MA"}
	byLA := make(map[string][]diet.TopologyNode)
	for sed, la := range parentOf {
		byLA[la] = append(byLA[la], diet.TopologyNode{Name: sed, Kind: "SeD"})
	}
	for _, la := range las {
		node := diet.TopologyNode{Name: la, Kind: "LA", Children: byLA[la]}
		root.Children = append(root.Children, node)
	}
	return root
}

func TestDiffLiveReportsOnlyParentMoves(t *testing.T) {
	d := platform.PaperDeployment()
	plan, err := Topology(d)
	if err != nil {
		t.Fatal(err)
	}
	var las []string
	for _, la := range plan.LAs {
		las = append(las, la.Name)
	}
	// A live hierarchy matching the plan exactly diffs to nothing.
	aligned := make(map[string]string)
	for _, s := range plan.SeDs {
		aligned[s.Name] = s.Parent
	}
	if changes := DiffLive(plan, liveTopologyOf("MA1", las, aligned)); len(changes) != 0 {
		t.Fatalf("aligned hierarchy must diff clean, got %v", changes)
	}
	// Mis-place two SeDs: exactly those two come back, steering to the plan.
	misplaced := make(map[string]string)
	for k, v := range aligned {
		misplaced[k] = v
	}
	misplaced["Nancy1"] = plan.SeDs[0].Parent // wrong cluster's LA
	if misplaced["Nancy1"] == aligned["Nancy1"] {
		misplaced["Nancy1"] = las[0]
	}
	misplaced["Toulouse2"] = las[1]
	if misplaced["Toulouse2"] == aligned["Toulouse2"] {
		misplaced["Toulouse2"] = las[2]
	}
	changes := DiffLive(plan, liveTopologyOf("MA1", las, misplaced))
	if len(changes) != 2 {
		t.Fatalf("want 2 changes, got %v", changes)
	}
	for _, c := range changes {
		if c.NewParent != aligned[c.SeD] || c.OldParent != misplaced[c.SeD] {
			t.Fatalf("change steers wrong: %+v", c)
		}
	}
	// A SeD absent from the live topology is not migrated.
	delete(misplaced, "Nancy1")
	if changes := DiffLive(plan, liveTopologyOf("MA1", las, misplaced)); len(changes) != 1 {
		t.Fatalf("absent SeD must be skipped, got %v", changes)
	}
}

func TestPlanMigrationsSkipsDeadTargetsAndNoopRefreshes(t *testing.T) {
	d := platform.PaperDeployment()
	plan, err := Topology(d)
	if err != nil {
		t.Fatal(err)
	}
	// Live hierarchy has only one of the planned LAs; every SeD sits there.
	// The static plan used no measurements, so there is nothing to refresh
	// and nowhere alive to move: a fully quiet pass.
	la := plan.SeDs[0].Parent
	parentOf := make(map[string]string)
	for _, s := range plan.SeDs {
		parentOf[s.Name] = la
	}
	migs := PlanMigrations(plan, liveTopologyOf("MA1", []string{la}, parentOf))
	if len(migs) != 0 {
		t.Fatalf("static plan over dead targets must migrate nothing, got %+v", migs)
	}

	// A measured plan keeps refreshing power for placement-correct SeDs
	// whose placement the plan derived from a trusted measurement — but
	// still never targets a dead agent.
	caps := map[string]Capability{plan.SeDs[0].Name: {MeasuredGFlops: 10, Confidence: 0.9}}
	measured, err := TopologyWith(d, Options{Capabilities: func(sed string) (Capability, bool) {
		c, ok := caps[sed]
		return c, ok
	}})
	if err != nil {
		t.Fatal(err)
	}
	migs = PlanMigrations(measured, liveTopologyOf("MA1", []string{la}, parentOf))
	if len(migs) != 1 {
		t.Fatalf("want exactly the measured SeD's refresh, got %+v", migs)
	}
	if m := migs[0]; m.NewParent != la || m.NewPower <= 0 {
		t.Fatalf("refresh %+v must keep the live placement and carry the planned power", m)
	}
}

// TestRegistrySourceReadsPerSource checks the capability adapter reads each
// SeD's own contribution, not the cluster blend, and declines unknown SeDs.
func TestRegistrySourceReadsPerSource(t *testing.T) {
	reg := cori.NewRegistry()
	mon := cori.NewMonitor(cori.Config{})
	for i := 0; i < 8; i++ {
		work := float64(1000 + 300*i)
		mon.Observe(cori.Sample{Service: "zoom", WorkGFlops: work,
			Duration: time.Duration(work / 25 * float64(time.Second))})
	}
	model, _ := mon.Model("zoom")
	reg.Update("sed-a", "grillon", time.Now(), []cori.Model{model})

	src := RegistrySource(reg, "zoom")
	cap, ok := src("sed-a")
	if !ok || cap.MeasuredGFlops < 20 || cap.MeasuredGFlops > 30 {
		t.Fatalf("capability = %+v ok=%v, want ~25 GFlops", cap, ok)
	}
	if _, ok := src("sed-b"); ok {
		t.Fatal("unknown SeD must report no capability")
	}
	if _, ok := RegistrySource(nil, "zoom")("sed-a"); ok {
		t.Fatal("nil registry must report no capability")
	}
	// Registry contributions arrive off the wire verbatim; the adapter must
	// refuse non-finite values rather than plan with them.
	for name, m := range map[string]cori.Model{
		"inf-power": {Service: "zoom", Samples: 5, Confidence: 0.9, EWMASeconds: 1, PerGFlopSeconds: 1e-320, MeasuredGFlops: math.Inf(1)},
		"nan-conf":  {Service: "zoom", Samples: 5, Confidence: math.NaN(), EWMASeconds: 10, MeanWorkGFlops: 100},
	} {
		reg.Update(name, "grillon", time.Now(), []cori.Model{m})
		if got, ok := src(name); ok {
			t.Fatalf("%s: corrupt contribution must report no capability, got %+v", name, got)
		}
	}
	// An out-of-range confidence is clamped, not rejected.
	reg.Update("hot-conf", "grillon", time.Now(), []cori.Model{
		{Service: "zoom", Samples: 5, Confidence: 42, EWMASeconds: 10, MeanWorkGFlops: 100},
	})
	if got, ok := src("hot-conf"); !ok || got.Confidence != 1 {
		t.Fatalf("confidence must clamp to 1, got %+v ok=%v", got, ok)
	}
}

// TestLiveReplannerConvergesLiveHierarchy wires the whole loop against a
// real in-process hierarchy: SeDs deployed under scrambled parents, a
// LiveReplanner over the MA's (empty) registry steering them back to the
// planned placement via Agent.ApplyPlan.
func TestLiveReplannerConvergesLiveHierarchy(t *testing.T) {
	dep := platform.Deployment{
		MASite: "Lyon",
		SeDs: []platform.SeDPlacement{
			{Name: "n1", Site: "Nancy", Cluster: "grillon", Machines: 4, CPU: platform.Opteron246},
			{Name: "n2", Site: "Nancy", Cluster: "grillon", Machines: 4, CPU: platform.Opteron246},
			{Name: "t1", Site: "Toulouse", Cluster: "violette", Machines: 4, CPU: platform.Opteron246},
		},
	}
	plan, err := Topology(dep)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := plan.Spec(nil, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	// Scramble: every SeD starts under the violette LA.
	for i := range spec.SeDs {
		spec.SeDs[i].Parent = "LA-violette"
	}
	live, err := diet.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	replanner := LiveReplanner(dep, "ramsesZoom2")
	migs := replanner(live.MA.Topology(), live.MA.Registry())
	// n1 and n2 move to LA-grillon; t1 is already placed right and the
	// (empty-registry) plan used no measurement, so it is left alone.
	if len(migs) != 2 {
		t.Fatalf("want 2 migrations, got %+v", migs)
	}
	for _, r := range live.MA.ApplyPlan(migs) {
		if !r.OK() {
			t.Fatalf("migration failed: %+v", r)
		}
	}
	wantParent := map[string]string{"n1": "LA-grillon", "n2": "LA-grillon", "t1": "LA-violette"}
	for _, sed := range live.SeDs {
		if got := sed.Parent(); got != wantParent[sed.Name()] {
			t.Fatalf("SeD %s under %q, want %q", sed.Name(), got, wantParent[sed.Name()])
		}
	}
	// A second pass is a fixed point: nothing moves.
	for _, r := range live.MA.ApplyPlan(replanner(live.MA.Topology(), live.MA.Registry())) {
		if r.Moved() {
			t.Fatalf("replan is not idempotent: %+v", r)
		}
	}
}

// TestReplanApplyProperty is the structural safety property of live
// replanning: for any generated deployment, any capability skew and any
// scrambled live placement, applying the measured replan's migrations always
// yields a connected hierarchy — every SeD reachable from the MA through a
// live LA, and exactly one parent per SeD.
func TestReplanApplyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cpus := []platform.CPU{{Model: "a", GHz: 2, GFlops: 4}, {Model: "b", GHz: 2.2, GFlops: 4.4}, {Model: "c", GHz: 2.6, GFlops: 5.2}}
	for iter := 0; iter < 200; iter++ {
		// Random deployment: 1..5 clusters, 1..4 SeDs each.
		nClusters := 1 + rng.Intn(5)
		var dep platform.Deployment
		dep.MASite = "site0"
		sedCluster := make(map[string]string)
		for c := 0; c < nClusters; c++ {
			cluster := fmt.Sprintf("cl%d", c)
			site := fmt.Sprintf("site%d", rng.Intn(3))
			for s := 0; s < 1+rng.Intn(4); s++ {
				name := fmt.Sprintf("sed-%d-%d", c, s)
				dep.SeDs = append(dep.SeDs, platform.SeDPlacement{
					Name: name, Site: site, Cluster: cluster,
					Machines: 1 + rng.Intn(16), CPU: cpus[rng.Intn(len(cpus))],
				})
				sedCluster[name] = cluster
			}
		}
		// Random capability skew: some SeDs measured at a random fraction of
		// advertised power, some unknown.
		caps := make(map[string]Capability)
		for _, s := range dep.SeDs {
			if rng.Intn(2) == 0 {
				caps[s.Name] = Capability{
					MeasuredGFlops: s.PowerGFlops() * (0.2 + 1.6*rng.Float64()),
					Confidence:     rng.Float64(),
				}
			}
		}
		src := func(sed string) (Capability, bool) { c, ok := caps[sed]; return c, ok }

		plan, _, err := Replan(dep, Options{Capabilities: src})
		if err != nil {
			t.Fatalf("iter %d: replan: %v", iter, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("iter %d: measured plan invalid: %v", iter, err)
		}

		// Scramble a live hierarchy: every SeD lands under a random planned
		// LA; occasionally drop an LA from the live set or a SeD entirely.
		var las []string
		for _, la := range plan.LAs {
			if rng.Intn(8) == 0 && len(plan.LAs) > 1 {
				continue // this LA never came up
			}
			las = append(las, la.Name)
		}
		if len(las) == 0 {
			las = []string{plan.LAs[0].Name}
		}
		parentOf := make(map[string]string)
		for _, s := range plan.SeDs {
			if rng.Intn(10) == 0 {
				continue // SeD not deployed
			}
			parentOf[s.Name] = las[rng.Intn(len(las))]
		}
		live := liveTopologyOf("MA1", las, parentOf)

		// Apply the migrations the way Agent.ApplyPlan does: a move only
		// succeeds when the target agent is alive; the SeD always keeps
		// exactly one parent.
		liveLA := make(map[string]bool)
		for _, la := range las {
			liveLA[la] = true
		}
		migs := PlanMigrations(plan, live)
		seen := make(map[string]bool)
		for _, m := range migs {
			if seen[m.SeD] {
				t.Fatalf("iter %d: SeD %s migrated twice in one plan", iter, m.SeD)
			}
			seen[m.SeD] = true
			if _, present := parentOf[m.SeD]; !present {
				t.Fatalf("iter %d: migration for undeployed SeD %s", iter, m.SeD)
			}
			if !liveLA[m.NewParent] {
				t.Fatalf("iter %d: migration %+v targets a dead agent", iter, m)
			}
			parentOf[m.SeD] = m.NewParent // the reparent
		}

		// Post-apply invariants: exactly one parent per SeD, parent alive,
		// and therefore every SeD reachable MA → LA → SeD.
		for sed, parent := range parentOf {
			if !liveLA[parent] {
				t.Fatalf("iter %d: SeD %s orphaned under dead agent %s", iter, sed, parent)
			}
		}
		// Everything the plan could place (its parent LA is alive) converged
		// to the planned placement.
		for _, s := range plan.SeDs {
			cur, present := parentOf[s.Name]
			if !present || !liveLA[s.Parent] {
				continue
			}
			if cur != s.Parent {
				t.Fatalf("iter %d: SeD %s under %s, plan wants %s", iter, s.Name, cur, s.Parent)
			}
		}
	}
}
