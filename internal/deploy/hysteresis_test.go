package deploy

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/diet"
)

// hystTopoWith builds a live MA→{LA-A,LA-B} hierarchy with each SeD under
// the named parent — enough shape to tell a parent move from a power
// refresh. The tests rebuild it between passes because the real replanner
// diffs against the live topology, which reflects the moves already applied.
func hystTopoWith(parents map[string]string) diet.TopologyNode {
	las := map[string]*diet.TopologyNode{
		"LA-A": {Name: "LA-A", Kind: "LA"},
		"LA-B": {Name: "LA-B", Kind: "LA"},
	}
	for _, sed := range []string{"Nancy1", "Nancy2"} {
		la := las[parents[sed]]
		la.Children = append(la.Children, diet.TopologyNode{Name: sed, Kind: "SeD"})
	}
	return diet.TopologyNode{
		Name: "MA", Kind: "MA",
		Children: []diet.TopologyNode{*las["LA-A"], *las["LA-B"]},
	}
}

// hystTopo is the bring-up placement: Nancy1 under LA-A, Nancy2 under LA-B.
func hystTopo() diet.TopologyNode {
	return hystTopoWith(map[string]string{"Nancy1": "LA-A", "Nancy2": "LA-B"})
}

// fakeClock is a hand-advanced clock for dwell-window tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestHysteresisFilter(t *testing.T) {
	live := hystTopo()
	move := func(sed, parent string, power float64) diet.Migration {
		return diet.Migration{SeD: sed, NewParent: parent, NewPower: power}
	}
	tests := []struct {
		name string
		cfg  HysteresisConfig
		// rounds are successive replan passes; gap advances the clock
		// between them. Each round's want is what Filter must let through.
		gap    time.Duration
		rounds [][2][]diet.Migration // {in, want} per pass
		// topos[i], when set, is the live placement Filter sees on pass
		// i+1 — it must track moves the earlier passes applied.
		topos []map[string]string
	}{
		{
			name: "zero config passes everything",
			rounds: [][2][]diet.Migration{
				{{move("Nancy1", "LA-B", 50), move("Nancy2", "LA-B", 20)},
					{move("Nancy1", "LA-B", 50), move("Nancy2", "LA-B", 20)}},
				{{move("Nancy1", "LA-A", 55)}, {move("Nancy1", "LA-A", 55)}},
			},
		},
		{
			name: "below-threshold power refresh dropped",
			cfg:  HysteresisConfig{MinPowerDeltaPct: 10},
			rounds: [][2][]diet.Migration{
				// First figure always applies (no baseline yet).
				{{move("Nancy1", "LA-A", 100)}, {move("Nancy1", "LA-A", 100)}},
				// 5% off the applied 100: noise, dropped.
				{{move("Nancy1", "LA-A", 105)}, nil},
				// 15% off: genuine drift, applied; baseline moves to 115.
				{{move("Nancy1", "LA-A", 115)}, {move("Nancy1", "LA-A", 115)}},
				// 5% off the new baseline: dropped again.
				{{move("Nancy1", "LA-A", 110)}, nil},
			},
		},
		{
			name: "in-dwell parent move deferred",
			cfg:  HysteresisConfig{Dwell: time.Hour},
			gap:  10 * time.Minute,
			rounds: [][2][]diet.Migration{
				// The first move of a SeD always goes through.
				{{move("Nancy1", "LA-B", 0)}, {move("Nancy1", "LA-B", 0)}},
				// 10 minutes later the plan flaps back: inside the dwell
				// window, deferred. The other SeD's first move is unaffected.
				{{move("Nancy1", "LA-A", 0), move("Nancy2", "LA-A", 0)},
					{move("Nancy2", "LA-A", 0)}},
			},
			topos: []map[string]string{
				nil, // bring-up placement
				// Pass 1's move was applied, so the live tree now has
				// Nancy1 under LA-B — the flap back is a genuine move.
				{"Nancy1": "LA-B", "Nancy2": "LA-B"},
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			clk := &fakeClock{t: time.Unix(1_000_000, 0)}
			tc.cfg.Now = clk.now
			h := NewHysteresis(tc.cfg)
			for i, round := range tc.rounds {
				pass := live
				if i < len(tc.topos) && tc.topos[i] != nil {
					pass = hystTopoWith(tc.topos[i])
				}
				got := h.Filter(pass, round[0])
				if !reflect.DeepEqual(got, round[1]) {
					t.Fatalf("pass %d: got %v, want %v", i+1, got, round[1])
				}
				clk.advance(tc.gap)
			}
		})
	}
}

// TestHysteresisDwellExpires: genuine drift still migrates — the same move
// deferred inside the dwell window goes through once the window has passed.
func TestHysteresisDwellExpires(t *testing.T) {
	live := hystTopo()
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	h := NewHysteresis(HysteresisConfig{Dwell: time.Hour, Now: clk.now})
	first := []diet.Migration{{SeD: "Nancy1", NewParent: "LA-B"}}
	if got := h.Filter(live, first); len(got) != 1 {
		t.Fatalf("first move filtered: %v", got)
	}
	// The move was applied: the live tree now shows Nancy1 under LA-B.
	live = hystTopoWith(map[string]string{"Nancy1": "LA-B", "Nancy2": "LA-B"})
	back := []diet.Migration{{SeD: "Nancy1", NewParent: "LA-A"}}
	clk.advance(30 * time.Minute)
	if got := h.Filter(live, back); got != nil {
		t.Fatalf("in-dwell move let through: %v", got)
	}
	clk.advance(31 * time.Minute) // 61 min since the applied move
	if got := h.Filter(live, back); len(got) != 1 {
		t.Fatalf("post-dwell move still deferred: %v", got)
	}
}

// TestHysteresisPowerRidesMove: a migration that both moves and re-powers is
// governed by the dwell rule only, and its power becomes the delta baseline.
func TestHysteresisPowerRidesMove(t *testing.T) {
	live := hystTopo()
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	h := NewHysteresis(HysteresisConfig{MinPowerDeltaPct: 10, Dwell: time.Hour, Now: clk.now})
	if got := h.Filter(live, []diet.Migration{{SeD: "Nancy1", NewParent: "LA-B", NewPower: 100}}); len(got) != 1 {
		t.Fatalf("move+power filtered: %v", got)
	}
	clk.advance(2 * time.Hour)
	// A power-only refresh (NewParent matches the live parent LA-A) within
	// 10% of the 100 the move carried: dropped against that baseline.
	if got := h.Filter(live, []diet.Migration{{SeD: "Nancy1", NewParent: "LA-A", NewPower: 95}}); got != nil {
		t.Fatalf("refresh within the move-carried baseline let through: %v", got)
	}
	// A 20% swing clears the floor.
	if got := h.Filter(live, []diet.Migration{{SeD: "Nancy1", NewParent: "LA-A", NewPower: 80}}); len(got) != 1 {
		t.Fatalf("genuine power drift dropped: %v", got)
	}
}

// TestHysteresisNilPassthrough: a nil filter (LiveReplannerWith without
// damping) is a passthrough, and an empty pass stays empty.
func TestHysteresisNilPassthrough(t *testing.T) {
	var h *Hysteresis
	migs := []diet.Migration{{SeD: "Nancy1", NewParent: "LA-B"}}
	if got := h.Filter(hystTopo(), migs); !reflect.DeepEqual(got, migs) {
		t.Fatalf("nil filter mangled the pass: %v", got)
	}
	hh := NewHysteresis(HysteresisConfig{MinPowerDeltaPct: 50, Dwell: time.Hour})
	if got := hh.Filter(hystTopo(), nil); got != nil {
		t.Fatalf("empty pass grew migrations: %v", got)
	}
}
