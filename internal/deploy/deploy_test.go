package deploy

import (
	"strings"
	"testing"

	"repro/internal/diet"
	"repro/internal/platform"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

func TestTopologyPlanShape(t *testing.T) {
	d := platform.PaperDeployment()
	p, err := Topology(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's deployment: 6 clusters → 6 LAs, 11 SeDs.
	if len(p.LAs) != 6 {
		t.Errorf("%d LAs, want 6", len(p.LAs))
	}
	if len(p.SeDs) != 11 {
		t.Errorf("%d SeDs, want 11", len(p.SeDs))
	}
	// Locality: every LA sits at its cluster's site, every SeD under the LA
	// of its own cluster.
	laSite := map[string]string{}
	for _, la := range p.LAs {
		laSite[la.Name] = la.Site
	}
	for _, s := range p.SeDs {
		if laSite[s.Parent] != s.Site {
			t.Errorf("SeD %s at %s parents to LA at %s", s.Name, s.Site, laSite[s.Parent])
		}
	}
	if p.MA.Site != "Lyon" {
		t.Errorf("MA at %s, want Lyon", p.MA.Site)
	}
}

func TestFlatPlanShape(t *testing.T) {
	d := platform.PaperDeployment()
	p, err := Flat(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.LAs) != 1 || p.LAs[0].Site != "Lyon" {
		t.Errorf("flat plan LAs: %+v", p.LAs)
	}
}

func TestTopologyBeatsFlatOnWANTraffic(t *testing.T) {
	// The §3.1 claim made quantitative: the topology-aware hierarchy costs
	// fewer wide-area messages per scheduling request.
	d := platform.PaperDeployment()
	topo, _ := Topology(d)
	flat, _ := Flat(d)
	tw, fw := topo.WANMessagesPerRequest(), flat.WANMessagesPerRequest()
	if tw >= fw {
		t.Errorf("topology-aware WAN messages %d should beat flat %d", tw, fw)
	}
	// Concretely: topo pays WAN only MA→LA for the 5 non-Lyon... Lyon LAs
	// are local; flat pays WAN LA→SeD for every non-Lyon SeD.
	if tw != 8 { // 4 non-Lyon clusters × 2 messages
		t.Errorf("topology WAN messages = %d, want 8", tw)
	}
	if fw != 16 { // 8 non-Lyon SeDs × 2 messages
		t.Errorf("flat WAN messages = %d, want 16", fw)
	}
}

func TestCollectLatency(t *testing.T) {
	plat := platform.Grid5000()
	d := platform.PaperDeployment()
	topo, _ := Topology(d)
	flat, _ := Flat(d)
	lt, lf := topo.CollectLatency(plat), flat.CollectLatency(plat)
	if lt <= 0 || lf <= 0 {
		t.Fatal("latencies must be positive")
	}
	// Both traverse one WAN round trip on the worst path, so the flat plan
	// is no faster despite its shorter tree.
	if lf < lt-1e-9 {
		t.Errorf("flat latency %g should not beat topology-aware %g", lf, lt)
	}
}

func TestValidateCatchesBrokenPlans(t *testing.T) {
	d := platform.PaperDeployment()
	p, _ := Topology(d)
	bad := *p
	bad.SeDs = append([]Node(nil), p.SeDs...)
	bad.SeDs[0].Parent = "LA-ghost"
	if err := bad.Validate(); err == nil {
		t.Error("unknown parent should fail validation")
	}
	dup := *p
	dup.SeDs = append([]Node(nil), p.SeDs...)
	dup.SeDs[1].Name = dup.SeDs[0].Name
	if err := dup.Validate(); err == nil {
		t.Error("duplicate SeD name should fail validation")
	}
	empty := Plan{MA: Node{Name: "MA1"}, Naming: Node{Name: "naming"}}
	if err := empty.Validate(); err == nil {
		t.Error("plan without SeDs should fail validation")
	}
	if _, err := Topology(platform.Deployment{MASite: "X"}); err == nil {
		t.Error("deployment without SeDs should fail")
	}
}

func TestSpecDeploysForReal(t *testing.T) {
	// The plan must convert into a deployment that actually comes up and
	// serves calls — the full §6.1 shape (1 MA, 6 LA, 11 SeD) in-process.
	rpc.ResetLocal()
	defer rpc.ResetLocal()
	desc, _ := diet.NewProfileDesc("echo", 0, 0, 1)
	desc.Set(0, diet.Scalar, diet.Int)
	desc.Set(1, diet.Scalar, diet.Int)
	services := []diet.ServiceSpec{{
		Desc: desc,
		Solve: func(p *diet.Profile) error {
			v, err := p.ScalarInt(0)
			if err != nil {
				return err
			}
			return p.SetScalarInt(1, v, diet.Volatile)
		},
	}}
	plan, err := Topology(platform.PaperDeployment())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := plan.Spec(scheduler.NewPowerAware(), services, true)
	if err != nil {
		t.Fatal(err)
	}
	d, err := diet.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if ests := d.MA.Collect("echo"); len(ests) != 11 {
		t.Fatalf("collected %d estimates, want 11", len(ests))
	}
	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := diet.NewProfile("echo", 0, 0, 1)
	p.SetScalarInt(0, 7, diet.Volatile)
	info, err := client.Call(p)
	if err != nil {
		t.Fatal(err)
	}
	// PowerAware must pick one of the Nancy SeDs (highest aggregate power).
	if !strings.HasPrefix(info.Server, "Nancy") {
		t.Errorf("power-aware first pick %q, want a Nancy SeD", info.Server)
	}
}

func TestCommands(t *testing.T) {
	plan, _ := Topology(platform.PaperDeployment())
	cmds := plan.Commands("ma-host:9001")
	joined := strings.Join(cmds, "\n")
	for _, want := range []string{
		"dietagent -name MA1 -kind MA -with-naming",
		"dietagent -name LA-grillon -kind LA -parent MA1",
		"dietsed -name Nancy1 -parent LA-grillon -naming ma-host:9001",
		"-cluster violette",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("commands missing %q", want)
		}
	}
	// One launch line per component.
	launches := 0
	for _, c := range cmds {
		if strings.HasPrefix(c, "dietagent") || strings.HasPrefix(c, "dietsed") {
			launches++
		}
	}
	if launches != 1+6+11 {
		t.Errorf("%d launch commands, want 18", launches)
	}
}
