package deploy

import (
	"math"
	"sync"
	"time"

	"repro/internal/cori"
	"repro/internal/diet"
	"repro/internal/platform"
)

// This file damps the live replanning loop. Recovery traffic and noisy
// measurements make the measured plan flap: a SeD that just survived a crash
// reports a briefly degraded model, the next replan pass moves it, the pass
// after moves it back — migration thrash, each move costing a drain pause.
// Hysteresis imposes two stability rules on the migrations a replanner emits:
// a parent move must wait out a per-SeD dwell time since that SeD's last
// move, and a power refresh must differ from the last applied figure by a
// minimum relative delta. Genuine drift still migrates — it simply has to
// persist past the dwell window.

// HysteresisConfig tunes the damping.
type HysteresisConfig struct {
	// MinPowerDeltaPct drops power refreshes within this percentage of the
	// last applied (or first seen) power for the SeD. Zero keeps every
	// refresh.
	MinPowerDeltaPct float64
	// Dwell is the minimum time between parent moves of the same SeD; a move
	// wanted inside the window is deferred to a later pass. Zero allows every
	// move.
	Dwell time.Duration
	// Now is the clock (defaults to time.Now; tests inject a fake).
	Now func() time.Time
}

// Hysteresis is the stateful filter. One instance must observe every replan
// pass of an agent, so the dwell and delta baselines span passes; it is safe
// for concurrent use.
type Hysteresis struct {
	cfg HysteresisConfig

	mu        sync.Mutex
	lastMoved map[string]time.Time // per SeD, when a parent move was last let through
	applied   map[string]float64   // per SeD, the last power figure let through
}

// NewHysteresis builds a filter from the config.
func NewHysteresis(cfg HysteresisConfig) *Hysteresis {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Hysteresis{
		cfg:       cfg,
		lastMoved: make(map[string]time.Time),
		applied:   make(map[string]float64),
	}
}

// Filter applies the stability rules to one replan pass: parent moves inside
// the dwell window are deferred (dropped from this pass; a later pass
// re-derives them if the drift persists), and power-only refreshes below the
// minimum delta are dropped. Everything let through updates the baselines.
// The live topology tells a parent move from a power refresh — a migration
// whose NewParent matches the SeD's current parent only carries power.
func (h *Hysteresis) Filter(live diet.TopologyNode, migs []diet.Migration) []diet.Migration {
	if h == nil || len(migs) == 0 {
		return migs
	}
	parentOf, _, _ := live.Index()
	now := h.cfg.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []diet.Migration
	for _, m := range migs {
		cur := parentOf[m.SeD]
		isMove := cur != "" && m.NewParent != cur
		if isMove {
			if h.cfg.Dwell > 0 {
				if last, ok := h.lastMoved[m.SeD]; ok && now.Sub(last) < h.cfg.Dwell {
					continue // inside the dwell window: defer the move
				}
			}
			h.lastMoved[m.SeD] = now
			if m.NewPower > 0 {
				h.applied[m.SeD] = m.NewPower
			}
			out = append(out, m)
			continue
		}
		// Power-only refresh.
		if m.NewPower <= 0 {
			out = append(out, m)
			continue
		}
		if h.cfg.MinPowerDeltaPct > 0 {
			if last, ok := h.applied[m.SeD]; ok && last > 0 &&
				100*math.Abs(m.NewPower-last)/last < h.cfg.MinPowerDeltaPct {
				continue // below the noise floor: keep the applied figure
			}
		}
		h.applied[m.SeD] = m.NewPower
		out = append(out, m)
	}
	return out
}

// LiveReplannerWith is LiveReplanner damped by a Hysteresis filter: the
// measured plan is derived exactly as before, then the emitted migrations
// pass the stability rules. A nil filter reproduces LiveReplanner.
func LiveReplannerWith(d platform.Deployment, service string, h *Hysteresis) func(diet.TopologyNode, *cori.Registry) []diet.Migration {
	inner := LiveReplanner(d, service)
	return func(live diet.TopologyNode, reg *cori.Registry) []diet.Migration {
		return h.Filter(live, inner(live, reg))
	}
}
