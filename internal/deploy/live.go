package deploy

import (
	"math"
	"sort"

	"repro/internal/cori"
	"repro/internal/diet"
	"repro/internal/platform"
)

// This file closes the replanning loop online: deploy.Replan computes the
// measured-power plan, DiffLive diffs it against a *running* hierarchy's
// topology, and PlanMigrations/LiveReplanner turn the difference into the
// diet.Migration list a live Master Agent executes without restarting
// anything (Agent.ApplyPlan + the SeD Reparent protocol). The capability
// signal comes from the MA's own gossip registry — the same models the
// heartbeat sweeps already carry — so a long-lived deployment keeps chasing
// delivered, not advertised, throughput.

// RegistrySource adapts an agent's gossip registry to a CapabilitySource for
// one service: each SeD's capability is what that SeD itself last reported
// (per-source, not the cluster blend — planning must not credit one machine
// with its siblings' speed). Contributions arrive off the gossip wire and
// are stored verbatim, so the adapter is the defense line: non-finite or
// out-of-range values are treated as no capability rather than fed into
// planning (a NaN confidence slips past every `<` comparison downstream).
func RegistrySource(reg *cori.Registry, service string) CapabilitySource {
	return func(sed string) (Capability, bool) {
		if reg == nil {
			return Capability{}, false
		}
		m, ok := reg.SourceModel(sed, service)
		if !ok {
			return Capability{}, false
		}
		delivered := m.DeliveredGFlops()
		if delivered <= 0 || math.IsInf(delivered, 0) || math.IsNaN(delivered) ||
			math.IsNaN(m.Confidence) || m.Confidence <= 0 {
			return Capability{}, false
		}
		conf := m.Confidence
		if conf > 1 {
			conf = 1
		}
		return Capability{MeasuredGFlops: delivered, Confidence: conf}, true
	}
}

// liveIndex maps a live topology through the shared TopologyNode.Index walk:
// which agent each SeD currently sits under, and which agents exist.
func liveIndex(live diet.TopologyNode) (parentOf map[string]string, agents map[string]bool) {
	parentOf, _, agentAddr := live.Index()
	agents = make(map[string]bool, len(agentAddr))
	for name := range agentAddr {
		agents[name] = true
	}
	return parentOf, agents
}

// DiffLive diffs a plan against the live hierarchy and reports the SeDs
// sitting under a different parent than the plan places them. Planned SeDs
// absent from the live topology are skipped (nothing to migrate), as are
// moves whose target agent is not running (a live replan can re-wire the
// hierarchy but not create agents). Changes are ordered by SeD name.
func DiffLive(p *Plan, live diet.TopologyNode) []Change {
	parentOf, agents := liveIndex(live)
	var out []Change
	for _, s := range p.SeDs {
		cur, present := parentOf[s.Name]
		if !present || cur == s.Parent || !agents[s.Parent] {
			continue
		}
		out = append(out, Change{
			SeD: s.Name, OldParent: cur, NewParent: s.Parent,
			OldPower: s.Power, NewPower: s.Power,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SeD < out[j].SeD })
	return out
}

// PlanMigrations renders a plan as the migration list that makes the live
// hierarchy match it: the parent moves DiffLive reports, plus a power
// refresh for every placement-correct SeD the plan placed by a trusted
// measurement (so advertised power keeps tracking delivered power as models
// drift). SeDs the plan placed by their advertised figure alone are left
// untouched — a steady-state pass over an untrained hierarchy migrates
// nothing and sends nothing.
func PlanMigrations(p *Plan, live diet.TopologyNode) []diet.Migration {
	parentOf, _ := liveIndex(live)
	movedTo := make(map[string]string)
	for _, c := range DiffLive(p, live) {
		movedTo[c.SeD] = c.NewParent
	}
	var out []diet.Migration
	for _, s := range p.SeDs {
		cur, present := parentOf[s.Name]
		if !present {
			continue
		}
		switch {
		case movedTo[s.Name] != "":
			out = append(out, diet.Migration{SeD: s.Name, NewParent: movedTo[s.Name], NewPower: s.Power})
		case s.Confidence > 0 && cur != "":
			out = append(out, diet.Migration{SeD: s.Name, NewParent: cur, NewPower: s.Power})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SeD < out[j].SeD })
	return out
}

// LiveReplanner builds the Replanner callback a long-lived Master Agent runs
// on its replan interval (diet.AgentConfig.Replanner): re-plan the deployment
// from the agent's gossip registry for the dominant service, then emit the
// migrations that bring the live hierarchy to the measured plan. A failed
// replan migrates nothing — the hierarchy keeps its current shape.
func LiveReplanner(d platform.Deployment, service string) func(diet.TopologyNode, *cori.Registry) []diet.Migration {
	return func(live diet.TopologyNode, reg *cori.Registry) []diet.Migration {
		plan, _, err := Replan(d, Options{Capabilities: RegistrySource(reg, service)})
		if err != nil {
			return nil
		}
		return PlanMigrations(plan, live)
	}
}
