package mpich

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestSendRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, "hello")
		}
		v, from, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if v.(string) != "hello" || from != 0 {
			return fmt.Errorf("got %v from %d", v, from)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectivity(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, "first")
			c.Send(1, 2, "second")
			return nil
		}
		// Receive out of order by tag: the tag-2 message must be delivered
		// even though tag-1 arrived first, and tag-1 must still be pending.
		v2, _, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		v1, _, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if v2.(string) != "second" || v1.(string) != "first" {
			return fmt.Errorf("selective recv broken: %v, %v", v1, v2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, c.Rank(), c.Rank()*10)
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			v, from, err := c.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if v.(int) != from*10 {
				return fmt.Errorf("payload %v from %d", v, from)
			}
			seen[from] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("missing senders: %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidArgs(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("expected error for world size 0")
	}
	w, _ := NewWorld(2)
	if _, err := w.Comm(5); err == nil {
		t.Error("expected error for out-of-range rank")
	}
	c, _ := w.Comm(0)
	if err := c.Send(9, 0, nil); err == nil {
		t.Error("expected error for invalid destination")
	}
	if err := c.Send(1, tagInternal+1, nil); err == nil {
		t.Error("expected error for reserved tag")
	}
	if _, _, err := c.Recv(9, 0); err == nil {
		t.Error("expected error for invalid source")
	}
}

func TestBarrier(t *testing.T) {
	var before, after atomic.Int32
	err := Run(4, func(c *Comm) error {
		before.Add(1)
		c.Barrier()
		// After the barrier, every rank must have incremented.
		if before.Load() != 4 {
			return fmt.Errorf("rank %d passed barrier with before=%d", c.Rank(), before.Load())
		}
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != 4 {
		t.Fatalf("after = %d, want 4", after.Load())
	}
}

func TestBcast(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		var v any
		if c.Rank() == 2 {
			v = c.Bcast(2, "payload")
		} else {
			v = c.Bcast(2, nil)
		}
		if v.(string) != "payload" {
			return fmt.Errorf("rank %d got %v", c.Rank(), v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastFloat64sCopies(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		data := []float64{1, 2, 3}
		got := c.BcastFloat64s(0, data)
		if c.Rank() == 1 {
			got[0] = 99 // must not corrupt rank 0's slice
		}
		c.Barrier()
		if c.Rank() == 0 && data[0] != 1 {
			return errors.New("bcast receivers share the root's slice")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSum(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		local := []float64{float64(c.Rank()), 1}
		got := c.AllReduce(OpSum, local)
		if got[0] != 10 || got[1] != 5 { // 0+1+2+3+4, 5×1
			return fmt.Errorf("rank %d: AllReduce = %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceMaxMin(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		v := float64(c.Rank())
		if mx := c.AllReduceScalar(OpMax, v); mx != 3 {
			return fmt.Errorf("max = %g", mx)
		}
		if mn := c.AllReduceScalar(OpMin, v); mn != 0 {
			return fmt.Errorf("min = %g", mn)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		out := c.Gather(1, c.Rank()*2)
		if c.Rank() == 1 {
			for r := 0; r < 3; r++ {
				if out[r].(int) != r*2 {
					return fmt.Errorf("gathered[%d] = %v", r, out[r])
				}
			}
		} else if out != nil {
			return errors.New("non-root should receive nil")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAll(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		send := make([]any, 3)
		for i := range send {
			send[i] = fmt.Sprintf("%d->%d", c.Rank(), i)
		}
		got, err := c.AllToAll(send)
		if err != nil {
			return err
		}
		for from := 0; from < 3; from++ {
			want := fmt.Sprintf("%d->%d", from, c.Rank())
			if got[from].(string) != want {
				return fmt.Errorf("rank %d got %v from %d, want %s", c.Rank(), got[from], from, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllWrongLen(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		_, err := c.AllToAll(make([]any, 1))
		if err == nil {
			return errors.New("expected error for wrong send length")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	sentinel := errors.New("rank 2 failed")
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestAllReduceDeterministic(t *testing.T) {
	// Rank-order folding must make repeated runs bit-identical even though
	// arrival order varies.
	run := func() []float64 {
		var out []float64
		Run(6, func(c *Comm) error {
			local := []float64{1e-16 * float64(c.Rank()+1), 1e16 * float64(c.Rank()+1)}
			got := c.AllReduce(OpSum, local)
			if c.Rank() == 0 {
				out = got
			}
			return nil
		})
		return out
	}
	a := run()
	for i := 0; i < 5; i++ {
		b := run()
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("AllReduce not deterministic: %v vs %v", a, b)
		}
	}
}
