// Package mpich is a small in-process message-passing substrate with MPI
// semantics: ranks, point-to-point send/receive with tag matching, and the
// collectives (barrier, broadcast, reduce, gather) the parallel RAMSES3d
// solver needs. The paper's solver runs under MPI on a cluster; here each
// rank is a goroutine and the interconnect is Go channels, which preserves
// the SPMD program structure while staying inside one address space.
package mpich

import (
	"fmt"
	"sync"
)

// AnySource matches a message from any rank in Recv.
const AnySource = -1

// AnyTag matches a message with any tag in Recv.
const AnyTag = -1

// reserved internal tags for collectives; user tags must be < tagInternal.
const (
	tagInternal = 1 << 28
	tagBarrier  = tagInternal + iota
	tagBcast
	tagReduce
	tagGather
	tagAllToAll
)

// message is one point-to-point envelope.
type message struct {
	src     int
	tag     int
	payload any
}

// World is a communicator universe of a fixed number of ranks.
type World struct {
	size      int
	mailboxes []chan message
}

// NewWorld creates a World with the given number of ranks. Mailboxes are
// buffered so that the eager-send pattern common in SPMD code does not
// deadlock for modest message counts.
func NewWorld(size int) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpich: world size must be positive, got %d", size)
	}
	w := &World{size: size, mailboxes: make([]chan message, size)}
	for i := range w.mailboxes {
		w.mailboxes[i] = make(chan message, 64*size)
	}
	return w, nil
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Comm is one rank's endpoint into a World. Comm methods are not safe for
// concurrent use by multiple goroutines, mirroring MPI's per-rank model.
type Comm struct {
	world   *World
	rank    int
	pending []message // out-of-order messages parked by selective Recv
}

// Comm returns rank r's endpoint.
func (w *World) Comm(r int) (*Comm, error) {
	if r < 0 || r >= w.size {
		return nil, fmt.Errorf("mpich: rank %d out of range [0,%d)", r, w.size)
	}
	return &Comm{world: w, rank: r}, nil
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers payload to rank dst with the given tag. It blocks only if
// dst's mailbox is full (rendezvous fallback), like a standard-mode MPI send.
func (c *Comm) Send(dst, tag int, payload any) error {
	if dst < 0 || dst >= c.world.size {
		return fmt.Errorf("mpich: send to invalid rank %d", dst)
	}
	if tag >= tagInternal || tag < 0 {
		return fmt.Errorf("mpich: user tag %d out of range [0,%d)", tag, tagInternal)
	}
	c.world.mailboxes[dst] <- message{src: c.rank, tag: tag, payload: payload}
	return nil
}

// send bypasses tag validation for internal collective traffic.
func (c *Comm) send(dst, tag int, payload any) {
	c.world.mailboxes[dst] <- message{src: c.rank, tag: tag, payload: payload}
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload and actual source. Use AnySource / AnyTag as wildcards. Messages
// that arrive out of matching order are parked and delivered to later calls.
func (c *Comm) Recv(src, tag int) (payload any, from int, err error) {
	if src != AnySource && (src < 0 || src >= c.world.size) {
		return nil, 0, fmt.Errorf("mpich: recv from invalid rank %d", src)
	}
	match := func(m message) bool {
		return (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag)
	}
	for i, m := range c.pending {
		if match(m) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return m.payload, m.src, nil
		}
	}
	for {
		m := <-c.world.mailboxes[c.rank]
		if match(m) {
			return m.payload, m.src, nil
		}
		c.pending = append(c.pending, m)
	}
}

// recv is Recv for internal collective traffic (panics never expected).
func (c *Comm) recv(src, tag int) (any, int) {
	p, f, _ := c.recvInternal(src, tag)
	return p, f
}

func (c *Comm) recvInternal(src, tag int) (any, int, error) {
	match := func(m message) bool {
		return (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag)
	}
	for i, m := range c.pending {
		if match(m) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return m.payload, m.src, nil
		}
	}
	for {
		m := <-c.world.mailboxes[c.rank]
		if match(m) {
			return m.payload, m.src, nil
		}
		c.pending = append(c.pending, m)
	}
}

// Barrier blocks until all ranks have entered it. Implemented as a gather of
// tokens at rank 0 followed by a broadcast release.
func (c *Comm) Barrier() {
	if c.rank == 0 {
		for i := 1; i < c.Size(); i++ {
			c.recv(AnySource, tagBarrier)
		}
		for i := 1; i < c.Size(); i++ {
			c.send(i, tagBarrier, nil)
		}
	} else {
		c.send(0, tagBarrier, nil)
		c.recv(0, tagBarrier)
	}
}

// Bcast distributes root's value to every rank and returns it. All ranks must
// call it; non-root input values are ignored.
func (c *Comm) Bcast(root int, value any) any {
	if c.rank == root {
		for i := 0; i < c.Size(); i++ {
			if i != root {
				c.send(i, tagBcast, value)
			}
		}
		return value
	}
	v, _ := c.recv(root, tagBcast)
	return v
}

// BcastFloat64s distributes root's slice; every rank receives a copy it owns.
func (c *Comm) BcastFloat64s(root int, data []float64) []float64 {
	v := c.Bcast(root, data)
	src := v.([]float64)
	if c.rank == root {
		return src
	}
	out := make([]float64, len(src))
	copy(out, src)
	return out
}

// ReduceOp combines two float64 values in a reduction.
type ReduceOp func(a, b float64) float64

// Standard reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// AllReduce element-wise reduces local slices across all ranks; every rank
// receives the combined result. len(local) must agree across ranks.
// Contributions are folded in rank order so floating-point results are
// bit-for-bit reproducible run to run.
func (c *Comm) AllReduce(op ReduceOp, local []float64) []float64 {
	if c.rank == 0 {
		contribs := make([][]float64, c.Size())
		contribs[0] = local
		for i := 1; i < c.Size(); i++ {
			v, from := c.recv(AnySource, tagReduce)
			contribs[from] = v.([]float64)
		}
		acc := make([]float64, len(local))
		copy(acc, contribs[0])
		for r := 1; r < c.Size(); r++ {
			for j := range acc {
				acc[j] = op(acc[j], contribs[r][j])
			}
		}
		for i := 1; i < c.Size(); i++ {
			c.send(i, tagReduce, acc)
		}
		return acc
	}
	c.send(0, tagReduce, local)
	v, _ := c.recv(0, tagReduce)
	shared := v.([]float64)
	out := make([]float64, len(shared))
	copy(out, shared)
	return out
}

// AllReduceScalar reduces a single value across all ranks.
func (c *Comm) AllReduceScalar(op ReduceOp, v float64) float64 {
	return c.AllReduce(op, []float64{v})[0]
}

// Gather collects each rank's value at root; root receives a slice indexed by
// rank, others receive nil.
func (c *Comm) Gather(root int, value any) []any {
	if c.rank == root {
		out := make([]any, c.Size())
		out[root] = value
		for i := 0; i < c.Size()-1; i++ {
			v, from := c.recv(AnySource, tagGather)
			out[from] = v
		}
		return out
	}
	c.send(root, tagGather, value)
	return nil
}

// AllToAll sends send[i] to rank i and returns the slice of payloads received
// from every rank (indexed by source). send must have world-size entries.
// Used for particle migration after each drift.
func (c *Comm) AllToAll(send []any) ([]any, error) {
	if len(send) != c.Size() {
		return nil, fmt.Errorf("mpich: AllToAll needs %d entries, got %d", c.Size(), len(send))
	}
	for i := 0; i < c.Size(); i++ {
		if i != c.rank {
			c.send(i, tagAllToAll, send[i])
		}
	}
	out := make([]any, c.Size())
	out[c.rank] = send[c.rank]
	for i := 0; i < c.Size()-1; i++ {
		v, from := c.recv(AnySource, tagAllToAll)
		out[from] = v
	}
	return out, nil
}

// Run executes fn as an SPMD program across size ranks, one goroutine per
// rank, and returns the first error (or panic, converted) any rank produced.
func Run(size int, fn func(*Comm) error) error {
	w, err := NewWorld(size)
	if err != nil {
		return err
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		comm, err := w.Comm(r)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(r int, comm *Comm) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("mpich: rank %d panicked: %v", r, p)
				}
			}()
			errs[r] = fn(comm)
		}(r, comm)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
