package cori

import (
	"math"
	"testing"
	"time"
)

// FuzzSnapshotRoundTrip throws corrupted, truncated and mutated JSON at the
// snapshot decoder and the Restore path: invalid input must be rejected with
// an error — never a panic — and any input that does decode and restore must
// re-snapshot into a state a second monitor restores cleanly.
func FuzzSnapshotRoundTrip(f *testing.F) {
	m := NewMonitor(Config{Window: 4})
	base := time.Unix(1_000_000_000, 0).UTC()
	m.SetNow(func() time.Time { return base })
	for i := 0; i < 6; i++ {
		m.Observe(Sample{
			Service:    "ramsesZoom2",
			WorkGFlops: float64(1000 * (i + 1)),
			Duration:   time.Duration(i+1) * time.Second,
			QueueDepth: i % 3,
			Wait:       time.Duration(i) * time.Millisecond,
			At:         base.Add(time.Duration(i) * time.Minute),
		})
	}
	m.WarmStart(Model{Service: "ramsesZoom1", Samples: 8, Confidence: 0.9, EWMASeconds: 30})
	valid, err := m.Snapshot().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated
	f.Add([]byte("{}"))
	f.Add([]byte(`{"Version":1,"Services":[{"Service":"x","Count":-3}]}`))
	f.Add([]byte(`{"Version":1,"Services":[{"Service":"x"},{"Service":"x"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return // corrupt/truncated/mis-versioned input is rejected, not fatal
		}
		fresh := NewMonitor(Config{Window: 8})
		if err := fresh.Restore(s); err != nil {
			return // schema-valid JSON may still violate restore invariants
		}
		// Whatever was accepted must be internally consistent: it snapshots
		// again and that snapshot restores into a second monitor.
		again := NewMonitor(Config{Window: 8})
		if err := again.Restore(fresh.Snapshot()); err != nil {
			t.Fatalf("restored state does not re-snapshot cleanly: %v", err)
		}
		// Models built from restored state must keep confidence in [0,1].
		for _, svc := range fresh.Services() {
			if model, ok := fresh.Model(svc); ok {
				if math.IsNaN(model.Confidence) || model.Confidence < 0 || model.Confidence > 1 {
					t.Fatalf("service %q restored to confidence %v outside [0,1]", svc, model.Confidence)
				}
			}
		}
	})
}

// FuzzMergeModels feeds arbitrary (including non-finite and out-of-range)
// model fields into the gossip merge and asserts the merged confidence stays
// in [0,1] — the invariant every consumer of a gossiped prior relies on.
func FuzzMergeModels(f *testing.F) {
	f.Add(10, 0.9, 30.0, 0.02, 5, 0.5, 45.0, 0.03)
	f.Add(1, 1.0, 1.0, 0.0, 1, 1.0, 1.0, 0.0)
	f.Add(0, 0.0, 0.0, -1.0, -5, 2.5, math.MaxFloat64, 0.0)
	f.Fuzz(func(t *testing.T, s1 int, c1, e1, p1 float64, s2 int, c2, e2, p2 float64) {
		a := Model{Service: "svc", Samples: s1, Confidence: c1, EWMASeconds: e1,
			PerGFlopSeconds: p1, BaseSeconds: 1, MeanWorkGFlops: 1500,
			MeanQueueDepth: p2, AgeSeconds: e2}
		b := Model{Service: "svc", Samples: s2, Confidence: c2, EWMASeconds: e2,
			PerGFlopSeconds: p2, WaitPerDepthSeconds: 2, WaitBaseSeconds: 0.5,
			MeanWaitSeconds: c1}
		merged, ok := MergeModels(a, b)
		if !ok {
			return // nothing usable — a legal outcome for garbage input
		}
		if math.IsNaN(merged.Confidence) || merged.Confidence < 0 || merged.Confidence > 1 {
			t.Fatalf("merged confidence %v outside [0,1]\n a=%+v\n b=%+v", merged.Confidence, a, b)
		}
		if merged.Samples <= 0 {
			t.Fatalf("a usable merge must carry positive samples, got %d", merged.Samples)
		}
		// No surviving input may poison the blend: every merged mean must
		// stay a number (weights are finite and the filter drops non-finite
		// fields wholesale).
		for name, v := range map[string]float64{
			"EWMASeconds": merged.EWMASeconds, "MeanQueueDepth": merged.MeanQueueDepth,
			"WaitBaseSeconds": merged.WaitBaseSeconds, "MeanWaitSeconds": merged.MeanWaitSeconds,
		} {
			if math.IsNaN(v) {
				t.Fatalf("merged %s is NaN\n a=%+v\n b=%+v", name, a, b)
			}
		}
	})
}
