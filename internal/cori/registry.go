package cori

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// This file is the sharing layer: agents maintain a cluster-keyed registry of
// the models their child SeDs have trained, gossip it up and down the
// hierarchy, and hand a confidence-weighted cluster merge to any fresh SeD
// that registers on a known cluster — the NWS/CoRI view of history as an
// asset keyed by resource class, not by process lifetime.

// SourceModels is one SeD's contribution to a registry: the cluster it runs
// on and its per-service models at the time it reported.
type SourceModels struct {
	Cluster string
	At      time.Time        // when the source reported; newest wins on merge
	Models  map[string]Model // service → model
}

// RegistrySnapshot is the serializable gossip payload: every known source's
// latest contribution, keyed by source (SeD) name. Keeping per-source
// granularity makes gossip idempotent — merging the same snapshot twice, or
// through any number of intermediate agents, converges to last-writer-wins
// per source instead of double-counting.
type RegistrySnapshot struct {
	Version int
	Sources map[string]SourceModels
}

// Registry is the cluster-keyed model store an agent maintains. It is safe
// for concurrent use.
type Registry struct {
	mu      sync.Mutex
	sources map[string]SourceModels
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]SourceModels)}
}

// Update records one SeD's current models. Contributions with no cluster
// label are dropped — an unlabelled SeD has no resource class to share
// under — and so are models still carrying gossiped-prior influence (Warm):
// accepting them would let a borrowed cluster model echo back through the
// registry as if a second SeD had measured it independently. Older reports
// than the one already held are ignored.
func (r *Registry) Update(source, cluster string, at time.Time, models []Model) {
	if source == "" || cluster == "" || len(models) == 0 {
		return
	}
	byService := make(map[string]Model, len(models))
	for _, m := range models {
		if m.Service == "" || m.Samples <= 0 || m.Warm {
			continue
		}
		byService[m.Service] = m
	}
	if len(byService) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if held, ok := r.sources[source]; ok && held.At.After(at) {
		return
	}
	r.sources[source] = SourceModels{Cluster: cluster, At: at, Models: byService}
}

// Merge folds a gossiped snapshot in: per source, the newer contribution
// wins. Merging is commutative, associative and idempotent, so agents can
// exchange snapshots in any order and still converge. Snapshots of any
// other schema version are rejected — a mixed-version hierarchy must not
// silently blend incompatible model encodings.
func (r *Registry) Merge(snap RegistrySnapshot) error {
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("cori: registry snapshot schema version %d, this build reads %d", snap.Version, SnapshotVersion)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for source, sm := range snap.Sources {
		if source == "" || sm.Cluster == "" || len(sm.Models) == 0 {
			continue
		}
		if held, ok := r.sources[source]; ok && held.At.After(sm.At) {
			continue
		}
		cp := SourceModels{Cluster: sm.Cluster, At: sm.At, Models: make(map[string]Model, len(sm.Models))}
		for svc, m := range sm.Models {
			cp.Models[svc] = m
		}
		r.sources[source] = cp
	}
	return nil
}

// Snapshot returns a deep copy of the registry for gossiping.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := RegistrySnapshot{Version: SnapshotVersion, Sources: make(map[string]SourceModels, len(r.sources))}
	for source, sm := range r.sources {
		cp := SourceModels{Cluster: sm.Cluster, At: sm.At, Models: make(map[string]Model, len(sm.Models))}
		for svc, m := range sm.Models {
			cp.Models[svc] = m
		}
		out.Sources[source] = cp
	}
	return out
}

// SourceModel returns the model one source (SeD) last reported for a
// service. Contributions are per-source, so a live Master Agent can plan
// deployments from exactly what each SeD measured for itself rather than the
// cluster blend — the capability view deploy.RegistrySource adapts.
func (r *Registry) SourceModel(source, service string) (Model, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sm, ok := r.sources[source]
	if !ok {
		return Model{}, false
	}
	m, ok := sm.Models[service]
	return m, ok
}

// SourceSnapshot wraps a single source's contribution as a gossipable
// snapshot. The migration protocol uses it to hand a moving SeD's registry
// contribution straight to its new parent, so the receiving subtree knows the
// mover's models before the next full gossip round. ok is false when the
// registry holds nothing for the source.
func (r *Registry) SourceSnapshot(source string) (RegistrySnapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sm, ok := r.sources[source]
	if !ok {
		return RegistrySnapshot{}, false
	}
	cp := SourceModels{Cluster: sm.Cluster, At: sm.At, Models: make(map[string]Model, len(sm.Models))}
	for svc, m := range sm.Models {
		cp.Models[svc] = m
	}
	return RegistrySnapshot{Version: SnapshotVersion, Sources: map[string]SourceModels{source: cp}}, true
}

// EvictStale expires contributions whose forecast confidence has fully
// decayed: each source's best model confidence, further decayed over halfLife
// for the time since the source reported, must stay at or above minConfidence
// or the whole contribution is dropped. Long-lived agents call this on every
// gossip round so registries do not accumulate dead SeDs forever.
//
// Eviction targets *stale* contributions, so a source is only considered
// once it has gone at least one halfLife without reporting: a live SeD that
// gossips every round but happens to carry low-confidence models must not be
// evicted and re-added in an endless churn.
//
// Eviction is local and idempotent. A peer that still holds the contribution
// may resurrect it through a later Merge, but as long as every agent sweeps
// with the same rule the next round evicts it again everywhere, so the
// hierarchy still converges — now to the evicted state. Returns the removed
// source names, sorted.
func (r *Registry) EvictStale(now time.Time, halfLife time.Duration, minConfidence float64) []string {
	if halfLife <= 0 || minConfidence <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var removed []string
	for source, sm := range r.sources {
		age := now.Sub(sm.At)
		if age < halfLife {
			continue // recent reporter — never churn a live source
		}
		decay := math.Exp2(-age.Seconds() / halfLife.Seconds())
		best := 0.0
		for _, m := range sm.Models {
			if c := m.Confidence * decay; c > best {
				best = c
			}
		}
		if best < minConfidence {
			removed = append(removed, source)
			delete(r.sources, source)
		}
	}
	sort.Strings(removed)
	return removed
}

// Prior merges every known model for (cluster, service) into the cluster
// prior a fresh SeD should warm-start from; ok is false when no source on
// that cluster has reported the service.
func (r *Registry) Prior(cluster, service string) (Model, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var models []Model
	for _, sm := range r.sources {
		if sm.Cluster != cluster {
			continue
		}
		if m, ok := sm.Models[service]; ok {
			models = append(models, m)
		}
	}
	return MergeModels(models...)
}

// PriorsFor returns the merged cluster prior for every service any source on
// the cluster has reported, sorted by service name.
func (r *Registry) PriorsFor(cluster string) []Model {
	r.mu.Lock()
	services := make(map[string]bool)
	for _, sm := range r.sources {
		if sm.Cluster != cluster {
			continue
		}
		for svc := range sm.Models {
			services[svc] = true
		}
	}
	r.mu.Unlock()
	names := make([]string, 0, len(services))
	for svc := range services {
		names = append(names, svc)
	}
	sort.Strings(names)
	out := make([]Model, 0, len(names))
	for _, svc := range names {
		if m, ok := r.Prior(cluster, svc); ok {
			out = append(out, m)
		}
	}
	return out
}

// Clusters lists the clusters with at least one contribution, sorted.
func (r *Registry) Clusters() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool)
	for _, sm := range r.sources {
		seen[sm.Cluster] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// MergeModels confidence-weights models of one service (typically from
// sibling SeDs of a cluster) into a single prior. Each model weighs
// Confidence × Samples, so a fully trained fresh model dominates a stale or
// barely trained one; two half-trained models merge to within tolerance of
// one fully trained model. Models with no usable duration signal are
// skipped; ok is false when nothing usable remains.
//
// Inputs arrive off the gossip wire, so the merge defends itself: models
// carrying any non-finite numeric field are dropped (one NaN would poison
// every weighted mean), and confidence is clamped into (0,1] before
// weighing, keeping the merged confidence in [0,1] no matter what a peer
// reported.
func MergeModels(models ...Model) (Model, bool) {
	finite := func(xs ...float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
		}
		return true
	}
	var usable []Model
	var weights []float64
	var wsum float64
	for _, m := range models {
		if !finite(m.Confidence, m.EWMASeconds, m.BaseSeconds, m.PerGFlopSeconds,
			m.MeanQueueDepth, m.AgeSeconds, m.MeanWorkGFlops, m.MeanWaitSeconds,
			m.WaitBaseSeconds, m.WaitPerDepthSeconds) {
			continue
		}
		if m.Confidence > 1 {
			m.Confidence = 1
		}
		w := m.Confidence * float64(m.Samples)
		if m.Samples <= 0 || m.EWMASeconds <= 0 || w <= 0 {
			continue
		}
		usable = append(usable, m)
		weights = append(weights, w)
		wsum += w
	}
	if len(usable) == 0 {
		return Model{}, false
	}
	out := Model{Service: usable[0].Service}
	// Weighted means over all usable models; quantities only some models
	// carry (regression pairs, optional means) average over the carriers.
	var slopeW, waitW, workW, waitsW float64
	for i, m := range usable {
		w := weights[i]
		if out.Samples > math.MaxInt-m.Samples { // saturate instead of overflowing
			out.Samples = math.MaxInt
		} else {
			out.Samples += m.Samples
		}
		out.EWMASeconds += w * m.EWMASeconds / wsum
		out.Confidence += w * m.Confidence / wsum
		out.MeanQueueDepth += w * m.MeanQueueDepth / wsum
		if m.AgeSeconds > out.AgeSeconds {
			out.AgeSeconds = m.AgeSeconds
		}
		if m.PerGFlopSeconds > 0 {
			slopeW += w
			out.PerGFlopSeconds += w * m.PerGFlopSeconds
			out.BaseSeconds += w * m.BaseSeconds
		}
		if m.WaitPerDepthSeconds > 0 {
			waitW += w
			out.WaitPerDepthSeconds += w * m.WaitPerDepthSeconds
			out.WaitBaseSeconds += w * m.WaitBaseSeconds
		}
		if m.MeanWorkGFlops > 0 {
			workW += w
			out.MeanWorkGFlops += w * m.MeanWorkGFlops
		}
		if m.MeanWaitSeconds > 0 {
			waitsW += w
			out.MeanWaitSeconds += w * m.MeanWaitSeconds
		}
	}
	if slopeW > 0 {
		out.PerGFlopSeconds /= slopeW
		out.BaseSeconds /= slopeW
		out.MeasuredGFlops = 1 / out.PerGFlopSeconds
	}
	if waitW > 0 {
		out.WaitPerDepthSeconds /= waitW
		out.WaitBaseSeconds /= waitW
	}
	if workW > 0 {
		out.MeanWorkGFlops /= workW
	}
	if waitsW > 0 {
		out.MeanWaitSeconds /= waitsW
	}
	if out.Confidence > 1 { // floating-point drift above the clamp
		out.Confidence = 1
	}
	return out, true
}
