package cori

import (
	"math"
	"testing"
	"time"
)

// fixedClock returns a settable virtual clock for staleness tests.
func fixedClock(start time.Time) (func() time.Time, func(time.Duration)) {
	now := start
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func TestTransferMonitorPredictsFromEWMA(t *testing.T) {
	clock, _ := fixedClock(time.Unix(0, 0))
	tm := NewTransferMonitor(Config{Now: clock})
	// Constant 100 MB moved in 2s ⇒ 50 MB/s, no size spread to regress on.
	for i := 0; i < 5; i++ {
		tm.Observe(TransferSample{From: "a", To: "b", SizeMB: 100, Duration: 2 * time.Second})
	}
	m, ok := tm.Model("a", "b")
	if !ok {
		t.Fatal("pair must have a model")
	}
	if m.PerMBSeconds != 0 {
		t.Fatalf("no size spread must yield no fit, got slope %v", m.PerMBSeconds)
	}
	if math.Abs(m.EWMAMBps-50) > 1e-9 {
		t.Fatalf("EWMA bandwidth = %v, want 50", m.EWMAMBps)
	}
	sec, conf, ok := tm.Predict("a", "b", 200)
	if !ok || math.Abs(sec-4) > 1e-9 || conf != 1 {
		t.Fatalf("Predict = (%v, %v, %v), want (4, 1, true)", sec, conf, ok)
	}
}

func TestTransferMonitorFitsLatencyPlusPerMB(t *testing.T) {
	clock, _ := fixedClock(time.Unix(0, 0))
	tm := NewTransferMonitor(Config{Now: clock})
	// duration = 0.5s latency + 0.01 s/MB exactly.
	for _, mb := range []float64{10, 50, 100, 400, 1000} {
		d := time.Duration((0.5 + 0.01*mb) * float64(time.Second))
		tm.Observe(TransferSample{From: "a", To: "b", SizeMB: mb, Duration: d})
	}
	m, _ := tm.Model("a", "b")
	if math.Abs(m.PerMBSeconds-0.01) > 1e-6 || math.Abs(m.LatencySeconds-0.5) > 1e-6 {
		t.Fatalf("fit = %v + %v·MB, want 0.5 + 0.01·MB", m.LatencySeconds, m.PerMBSeconds)
	}
	if got := m.TransferSeconds(200); math.Abs(got-2.5) > 1e-6 {
		t.Fatalf("TransferSeconds(200) = %v, want 2.5", got)
	}
}

func TestTransferMonitorPairIsSymmetric(t *testing.T) {
	tm := NewTransferMonitor(Config{})
	tm.Observe(TransferSample{From: "b", To: "a", SizeMB: 10, Duration: time.Second})
	if _, ok := tm.Model("a", "b"); !ok {
		t.Fatal("reverse direction must train the same pair model")
	}
	if got := PairKey("b", "a"); got != PairKey("a", "b") || got != "a|b" {
		t.Fatalf("PairKey not canonical: %q", got)
	}
}

func TestTransferMonitorConfidenceDecays(t *testing.T) {
	clock, advance := fixedClock(time.Unix(0, 0))
	tm := NewTransferMonitor(Config{HalfLife: time.Hour, Now: clock})
	tm.Observe(TransferSample{From: "a", To: "b", SizeMB: 10, Duration: time.Second})
	m, _ := tm.Model("a", "b")
	if m.Confidence != 1 {
		t.Fatalf("fresh confidence = %v, want 1", m.Confidence)
	}
	advance(2 * time.Hour)
	m, _ = tm.Model("a", "b")
	if math.Abs(m.Confidence-0.25) > 1e-9 {
		t.Fatalf("confidence after two half-lives = %v, want 0.25", m.Confidence)
	}
}

func TestTransferMonitorIgnoresDegenerateSamples(t *testing.T) {
	tm := NewTransferMonitor(Config{})
	tm.Observe(TransferSample{From: "a", To: "b", SizeMB: 0, Duration: time.Second})
	tm.Observe(TransferSample{From: "a", To: "b", SizeMB: 10, Duration: 0})
	tm.Observe(TransferSample{From: "a", To: "a", SizeMB: 10, Duration: time.Second})
	if pairs := tm.Pairs(); len(pairs) != 0 {
		t.Fatalf("degenerate samples must be dropped, got pairs %v", pairs)
	}
	if _, _, ok := tm.Predict("a", "b", 10); ok {
		t.Fatal("unobserved pair must not predict")
	}
	if sec, conf, ok := tm.Predict("n", "n", 10); !ok || sec != 0 || conf != 1 {
		t.Fatalf("same-node transfer = (%v, %v, %v), want free with full confidence", sec, conf, ok)
	}
}

func TestTransferMonitorWindowBounds(t *testing.T) {
	tm := NewTransferMonitor(Config{Window: 4})
	for i := 0; i < 10; i++ {
		tm.Observe(TransferSample{From: "a", To: "b", SizeMB: 10, Duration: time.Second})
	}
	m, _ := tm.Model("a", "b")
	if m.Window != 4 || m.Samples != 10 {
		t.Fatalf("window/samples = %d/%d, want 4/10", m.Window, m.Samples)
	}
}
