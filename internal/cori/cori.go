// Package cori implements the resource-information collector and performance
// forecaster the paper's conclusion calls for: in real DIET the CoRI
// (Collector of Resource Information) and FAST layers feed plug-in schedulers
// with richer server information than the static estimation vector, and the
// paper notes a better makespan "could be attained by writing a plug-in
// scheduler" driven by such data.
//
// Each SeD hosts a Monitor. The Monitor records the history of completed
// solves — duration, work size, queue depth at admission — into a bounded
// ring per service, and maintains two online duration models:
//
//   - an EWMA of solve durations (fixed per-sample weight; the separate
//     Confidence signal handles wall-clock staleness), the right predictor
//     for constant-cost services and the fallback when work sizes are
//     unknown;
//   - an online least-squares fit duration ≈ base + perGFlop·work, which
//     captures how a heterogeneous work size maps to time on *this* server
//     (the slope is effectively the inverse of the server's delivered power,
//     measured rather than advertised).
//
// Forecast answers "how long would work GFlops take here, and how long until
// the server drains what it already accepted" — the two quantities the
// forecast-aware plug-in schedulers in internal/scheduler rank by. The same
// models feed two more decision points: Model.DeliveredGFlops gives
// measured-power deployment planning (internal/deploy) the throughput each
// SeD actually sustains, and Monitor.Forecast gives batch reservation
// sizing (internal/batch.WalltimePolicy) the duration a walltime grant must
// cover.
package cori

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/scheduler"
)

// Sample is one completed solve observation.
type Sample struct {
	Service    string
	WorkGFlops float64       // caller's work estimate; 0 when unknown
	Duration   time.Duration // compute time, excluding queue wait
	QueueDepth int           // requests already queued when this one was admitted
	Wait       time.Duration // observed queue wait before compute; <= 0 when unknown
	At         time.Time     // completion time
}

// Config tunes a Monitor. The zero value selects sensible defaults.
type Config struct {
	// Window bounds the per-service history ring (default 64).
	Window int
	// Alpha is the EWMA weight of the newest sample (default 0.25).
	Alpha float64
	// HalfLife is the staleness half-life of forecast confidence: a model
	// whose newest sample is HalfLife old is trusted half as much
	// (default 1h, roughly one paper-scale solve).
	HalfLife time.Duration
	// Now overrides the clock, letting tests drive staleness decay
	// deterministically and the simulator run the Monitor in virtual time.
	// Defaults to time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.25
	}
	if c.HalfLife <= 0 {
		c.HalfLife = time.Hour
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// history is the bounded per-service record plus the online models.
type history struct {
	ring  []Sample // bounded; oldest overwritten first
	next  int      // ring write cursor
	count int      // total samples ever observed (≥ len(ring) entries kept)

	ewmaSeconds float64
	lastAt      time.Time

	// Online least-squares accumulators over the *ring* contents are
	// recomputed on demand; keeping them windowed (not lifetime sums) lets
	// the model track servers whose delivered power drifts.

	// prior is a gossiped cluster model installed by WarmStart; it is
	// blended into Model output with priorWeight effective samples until
	// local history outweighs it. priorAt stamps the installation so the
	// prior's confidence keeps decaying on this monitor's clock.
	prior       *Model
	priorWeight float64
	priorAt     time.Time
}

// Model is a snapshot of the forecaster's state for one service — the
// extended estimation vector a SeD copies into scheduler.Estimate.
type Model struct {
	Service string
	Samples int // total solves observed (lifetime)
	Window  int // solves currently in the ring

	// EWMASeconds is the exponentially weighted recent solve duration
	// (per-sample weight Alpha; staleness shows up in Confidence, not here).
	EWMASeconds float64
	// BaseSeconds and PerGFlopSeconds are the least-squares fit
	// duration ≈ BaseSeconds + PerGFlopSeconds·work. PerGFlopSeconds is 0
	// when the window holds no work-size spread to regress on (unknown or
	// constant work), in which case EWMASeconds is the whole model.
	BaseSeconds     float64
	PerGFlopSeconds float64
	// MeasuredGFlops is the delivered power implied by the fit (1/slope),
	// 0 when the slope is unavailable.
	MeasuredGFlops float64
	// MeanWorkGFlops is the average work size of ring samples that carried a
	// work estimate, 0 when none did. Together with EWMASeconds it yields a
	// delivered-power estimate even when the window has no work-size spread
	// to regress on (see DeliveredGFlops).
	MeanWorkGFlops float64
	// Confidence ∈ (0,1]: 2^(-age/HalfLife) where age is the time since the
	// newest sample. Fresh history ≈ 1; stale history decays toward 0.
	Confidence float64
	// AgeSeconds is that age, for reporting.
	AgeSeconds float64
	// MeanQueueDepth is the average queue depth solves met at admission —
	// the contention signal.
	MeanQueueDepth float64
	// MeanWaitSeconds is the average observed queue wait of ring samples
	// that carried one, 0 when none did.
	MeanWaitSeconds float64
	// WaitBaseSeconds and WaitPerDepthSeconds are the least-squares fit
	// wait ≈ WaitBaseSeconds + WaitPerDepthSeconds·depth over samples that
	// observed their queue wait — the measured replacement for the
	// (queued+running) × EWMA drain approximation. WaitPerDepthSeconds is 0
	// when the window holds no depth spread to regress on.
	WaitBaseSeconds     float64
	WaitPerDepthSeconds float64
	// Warm reports that this model still carries gossiped-prior influence
	// (WarmStart): the prior's weight fades as local history fills the ring
	// and a full window of local samples retires it, clearing the flag.
	// PriorWeight is the effective sample weight the prior carries in the
	// blend.
	Warm        bool
	PriorWeight float64
}

// SolveSeconds predicts the duration of work GFlops under this model;
// it returns a negative value when the model holds no samples. It delegates
// to scheduler.Estimate.ForecastSolveSeconds so the collector and the
// policies share one prediction implementation.
func (m Model) SolveSeconds(workGFlops float64) float64 {
	var est scheduler.Estimate
	m.ApplyToEstimate(&est, 0)
	return est.ForecastSolveSeconds(workGFlops)
}

// WaitAtDepth predicts the queue wait a request admitted behind depth others
// would see, from the wait-on-depth regression. ok is false when the window
// held no depth spread to regress on — callers must then fall back to a
// pending × EWMA approximation such as Monitor.DrainSeconds.
func (m Model) WaitAtDepth(depth int) (float64, bool) {
	if m.WaitPerDepthSeconds <= 0 {
		return 0, false
	}
	w := m.WaitBaseSeconds + m.WaitPerDepthSeconds*float64(depth)
	if w < 0 {
		w = 0
	}
	return w, true
}

// DeliveredGFlops is the best available delivered-power estimate for the
// server: the regression slope's implied power when the window has work-size
// spread, else the throughput implied by running the mean observed work size
// in the EWMA duration, else 0 (no sample ever carried a work estimate).
// This is the capability signal measured-power deployment planning
// (internal/deploy) places SeDs by.
func (m Model) DeliveredGFlops() float64 {
	if m.MeasuredGFlops > 0 {
		return m.MeasuredGFlops
	}
	if m.MeanWorkGFlops > 0 && m.EWMASeconds > 0 {
		return m.MeanWorkGFlops / m.EWMASeconds
	}
	return 0
}

// ApplyToEstimate copies the model into est's forecast-extension fields,
// with drainSeconds (see Monitor.DrainSeconds) as the pending-work forecast.
// Both the live diet.SeD and the simulator's mirrored SeD build their
// estimation vectors through this one projection, so the two paths cannot
// drift.
func (m Model) ApplyToEstimate(est *scheduler.Estimate, drainSeconds float64) {
	est.HasForecast = true
	est.ForecastSamples = m.Samples
	est.EWMASolveSeconds = m.EWMASeconds
	est.ForecastBaseS = m.BaseSeconds
	est.ForecastPerGFlopS = m.PerGFlopSeconds
	est.ForecastConfidence = m.Confidence
	est.PendingWorkSeconds = drainSeconds
}

// DrainSeconds forecasts how long the server needs to work off its
// accepted-but-unfinished solves: per-service pending counts, each priced at
// that service's recent EWMA duration, shared over capacity slots. A pending
// service with no history of its own (nothing completed yet) borrows the
// proxy model's EWMA rather than being priced at zero.
func (m *Monitor) DrainSeconds(pending map[string]int, proxy Model, capacity int) float64 {
	if capacity < 1 {
		capacity = 1
	}
	// Only the cached EWMAs are needed — skip the full Model regression,
	// this sits on the per-request estimation hot path.
	m.mu.Lock()
	defer m.mu.Unlock()
	var total float64
	for svc, n := range pending {
		if n <= 0 {
			continue
		}
		ewma := proxy.EWMASeconds
		if h := m.svc[svc]; h != nil && h.count > 0 {
			ewma = h.ewmaSeconds
		}
		total += float64(n) * ewma
	}
	return total / float64(capacity)
}

// DrainEstimate forecasts how long the server needs to work off its accepted
// work: the queue-wait regression evaluated at the current depth when the
// model has one (wait measured directly, accurate when queued jobs differ in
// size), else the per-service pending × EWMA approximation of DrainSeconds.
// Both diet.SeD.Estimate and the simulator's mirrored SeD price their drain
// through this one method, so the two paths cannot drift.
func (m *Monitor) DrainEstimate(model Model, pending map[string]int, depth, capacity int) float64 {
	if w, ok := model.WaitAtDepth(depth); ok {
		return w
	}
	return m.DrainSeconds(pending, model, capacity)
}

// Monitor collects per-service solve history for one server and forecasts
// solve durations.
//
// Locking contract: every exported method is safe for concurrent use — all
// mutable state (the per-service histories, the installed priors, and the
// clock rebound by SetNow) is guarded by one mutex, and everything handed out
// (Model values, Snapshot contents) or taken in (Restore, WarmStart) is
// copied, never aliased, so callers can Observe, Model, Snapshot and Restore
// from different goroutines freely. The one obligation that remains with the
// caller is the injected Config.Now func: when the Monitor is shared across
// goroutines the clock itself must be safe for concurrent calls (time.Now
// is; a test clock or the simulator's virtual clock must be single-threaded
// or synchronized on its own).
type Monitor struct {
	cfg Config
	now func() time.Time

	mu  sync.Mutex
	svc map[string]*history
}

// NewMonitor returns a Monitor with the given configuration.
func NewMonitor(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{cfg: cfg, now: cfg.Now, svc: make(map[string]*history)}
}

// SetNow rebinds the Monitor's clock (nil restores time.Now). The simulator
// uses it to carry a trained Monitor into a fresh virtual-time run.
func (m *Monitor) SetNow(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	m.mu.Lock()
	m.now = now
	m.mu.Unlock()
}

// Observe records one completed solve. Zero-duration samples are clamped to
// a microsecond so models stay positive.
func (m *Monitor) Observe(s Sample) {
	if s.Service == "" {
		return
	}
	if s.Duration <= 0 {
		s.Duration = time.Microsecond
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.At.IsZero() {
		s.At = m.now()
	}
	h := m.svc[s.Service]
	if h == nil {
		h = &history{ring: make([]Sample, 0, m.cfg.Window)}
		m.svc[s.Service] = h
	}
	if len(h.ring) < m.cfg.Window {
		h.ring = append(h.ring, s)
	} else {
		h.ring[h.next] = s
	}
	h.next = (h.next + 1) % m.cfg.Window
	h.count++
	d := s.Duration.Seconds()
	if h.count == 1 {
		h.ewmaSeconds = d
	} else {
		h.ewmaSeconds = m.cfg.Alpha*d + (1-m.cfg.Alpha)*h.ewmaSeconds
	}
	if s.At.After(h.lastAt) {
		h.lastAt = s.At
	}
}

// Model snapshots the forecaster state for a service. ok is false when the
// Monitor has never observed the service and holds no gossiped prior for it.
func (m *Monitor) Model(service string) (Model, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.modelLocked(service)
}

// modelLocked builds the (possibly prior-blended) model; m.mu must be held.
func (m *Monitor) modelLocked(service string) (Model, bool) {
	h := m.svc[service]
	if h == nil || (h.count == 0 && h.prior == nil) {
		return Model{Service: service}, false
	}
	if h.count == 0 {
		// Nothing observed locally yet: the warm-started prior *is* the
		// model, trusted at its decayed confidence.
		return m.priorModel(h, service), true
	}
	out := Model{
		Service:     service,
		Samples:     h.count,
		Window:      len(h.ring),
		EWMASeconds: h.ewmaSeconds,
	}
	// Windowed least squares of duration on work, over samples that carry a
	// work estimate. Needs spread in work sizes: with a single distinct work
	// value the slope is undefined and the EWMA is the better model.
	var n, sw, sd, sww, swd float64
	// The same windowed fit of observed queue wait on admission depth, over
	// samples that observed their wait.
	var wn, wx, wy, wxx, wxy float64
	var qsum float64
	for _, s := range h.ring {
		qsum += float64(s.QueueDepth)
		if s.Wait > 0 {
			x, y := float64(s.QueueDepth), s.Wait.Seconds()
			wn++
			wx += x
			wy += y
			wxx += x * x
			wxy += x * y
		}
		if s.WorkGFlops <= 0 {
			continue
		}
		w, d := s.WorkGFlops, s.Duration.Seconds()
		n++
		sw += w
		sd += d
		sww += w * w
		swd += w * d
	}
	out.MeanQueueDepth = qsum / float64(len(h.ring))
	if n > 0 {
		out.MeanWorkGFlops = sw / n
	}
	if n >= 2 {
		det := n*sww - sw*sw
		if det > 1e-9*sww { // guard against a degenerate (constant-work) window
			slope := (n*swd - sw*sd) / det
			if slope > 0 {
				out.PerGFlopSeconds = slope
				out.BaseSeconds = (sd - slope*sw) / n
				out.MeasuredGFlops = 1 / slope
			}
		}
	}
	if wn > 0 {
		out.MeanWaitSeconds = wy / wn
	}
	if wn >= 2 {
		det := wn*wxx - wx*wx
		// Depths are small integers, so guard the determinant absolutely as
		// well as relatively (a constant-depth window must decline the fit).
		if det > 1e-9 && det > 1e-9*wxx {
			slope := (wn*wxy - wx*wy) / det
			if slope > 0 {
				out.WaitPerDepthSeconds = slope
				out.WaitBaseSeconds = (wy - slope*wx) / wn
			}
		}
	}
	age := m.now().Sub(h.lastAt)
	if age < 0 {
		age = 0
	}
	out.AgeSeconds = age.Seconds()
	out.Confidence = math.Exp2(-age.Seconds() / m.cfg.HalfLife.Seconds())
	if h.prior != nil {
		out = m.blendPrior(out, h)
	}
	return out, true
}

// priorConfidence is the installed prior's confidence decayed from its
// installation on this monitor's clock; m.mu must be held.
func (m *Monitor) priorConfidence(h *history) float64 {
	age := m.now().Sub(h.priorAt)
	if age < 0 {
		age = 0
	}
	return h.prior.Confidence * math.Exp2(-age.Seconds()/m.cfg.HalfLife.Seconds())
}

// priorModel projects the installed prior as the service's whole model (no
// local history yet); m.mu must be held.
func (m *Monitor) priorModel(h *history, service string) Model {
	out := *h.prior
	out.Service = service
	out.Window = 0
	out.Samples = int(h.priorWeight + 0.5)
	if out.Samples < 1 {
		out.Samples = 1
	}
	out.Confidence = m.priorConfidence(h)
	out.AgeSeconds = m.now().Sub(h.priorAt).Seconds()
	if out.AgeSeconds < 0 {
		out.AgeSeconds = 0
	}
	out.Warm = true
	out.PriorWeight = h.priorWeight
	return out
}

// blendPrior folds the gossiped cluster prior into the locally fitted model.
// Weights are effective sample counts — the local lifetime count against the
// prior's discounted weight, which additionally fades linearly as the local
// ring fills — so a handful of local solves already shift the blend and a
// full window of local history retires the prior entirely; m.mu must be
// held.
func (m *Monitor) blendPrior(local Model, h *history) Model {
	p := *h.prior
	wl := float64(h.count)
	wp := h.priorWeight * (1 - float64(len(h.ring))/float64(m.cfg.Window))
	if wp <= 0 {
		return local
	}
	f := wl / (wl + wp)
	mix := func(a, b float64) float64 { return f*a + (1-f)*b }
	// Quantities either side may lack (slope/base pairs, means over optional
	// fields) blend only when both sides have them, else keep whichever side
	// does.
	mixPair := func(la, lb, pa, pb float64) (float64, float64) {
		switch {
		case la > 0 && pa > 0:
			return mix(la, pa), mix(lb, pb)
		case la > 0:
			return la, lb
		default:
			return pa, pb
		}
	}
	out := local
	out.EWMASeconds = mix(local.EWMASeconds, p.EWMASeconds)
	out.PerGFlopSeconds, out.BaseSeconds = mixPair(local.PerGFlopSeconds, local.BaseSeconds, p.PerGFlopSeconds, p.BaseSeconds)
	if out.PerGFlopSeconds > 0 {
		out.MeasuredGFlops = 1 / out.PerGFlopSeconds
	} else {
		out.MeasuredGFlops = 0
	}
	out.WaitPerDepthSeconds, out.WaitBaseSeconds = mixPair(local.WaitPerDepthSeconds, local.WaitBaseSeconds, p.WaitPerDepthSeconds, p.WaitBaseSeconds)
	out.MeanWorkGFlops, _ = mixPair(local.MeanWorkGFlops, 0, p.MeanWorkGFlops, 0)
	out.MeanWaitSeconds, _ = mixPair(local.MeanWaitSeconds, 0, p.MeanWaitSeconds, 0)
	out.MeanQueueDepth = mix(local.MeanQueueDepth, p.MeanQueueDepth)
	out.Samples = h.count + int(wp+0.5)
	// Confidence blends the local staleness signal with the prior's decayed
	// trust, floored at the local value: fresh local samples must never be
	// trusted less for having a prior behind them.
	out.Confidence = math.Max(local.Confidence, mix(local.Confidence, m.priorConfidence(h)))
	out.Warm = true
	out.PriorWeight = wp
	return out
}

// warmStartDiscount is how much a borrowed cluster model is trusted relative
// to locally observed history: half weight, so local measurements take over
// quickly once the SeD starts solving for itself.
const warmStartDiscount = 0.5

// WarmStart installs a gossiped cluster model as the prior for its service —
// the cross-SeD sharing entry point: a fresh SeD joining a cluster the grid
// has already characterized seeds its forecasts from the cluster model
// instead of the power-aware fallback. The prior weighs
// Confidence × min(Samples, Window) × ½ effective samples in later blends; a
// lighter prior never replaces a heavier installed one, and priors with no
// usable duration signal are ignored.
func (m *Monitor) WarmStart(prior Model) {
	if prior.Service == "" || prior.Samples <= 0 || prior.EWMASeconds <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	eff := math.Min(float64(prior.Samples), float64(m.cfg.Window))
	w := prior.Confidence * eff * warmStartDiscount
	if w <= 0 {
		return
	}
	h := m.svc[prior.Service]
	if h == nil {
		h = &history{ring: make([]Sample, 0, m.cfg.Window)}
		m.svc[prior.Service] = h
	}
	if h.prior != nil && h.priorWeight >= w {
		return
	}
	p := prior
	p.Warm = false // the stored prior is the raw cluster model
	h.prior = &p
	h.priorWeight = w
	h.priorAt = m.now()
}

// Forecast predicts the solve duration of work GFlops for a service.
// ok is false (and seconds negative) when there is no history to predict
// from — callers must then fall back to static information such as the
// advertised power.
func (m *Monitor) Forecast(service string, workGFlops float64) (seconds float64, ok bool) {
	model, ok := m.Model(service)
	if !ok {
		return -1, false
	}
	return model.SolveSeconds(workGFlops), true
}

// Services lists the services with history, sorted.
func (m *Monitor) Services() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.svc))
	for name := range m.svc {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Metrics exposes the CoRI-style extended estimation tags for a service,
// named after the EST_* constants of DIET's CoRI API. Absent service →
// empty map.
func (m *Monitor) Metrics(service string) map[string]float64 {
	model, ok := m.Model(service)
	if !ok {
		return map[string]float64{}
	}
	warm := 0.0
	if model.Warm {
		warm = 1
	}
	return map[string]float64{
		"EST_NBSAMPLES":      float64(model.Samples),
		"EST_TCOMP":          model.EWMASeconds,
		"EST_TCOMP_BASE":     model.BaseSeconds,
		"EST_TCOMP_PERGF":    model.PerGFlopSeconds,
		"EST_MEASURED_FLOP":  model.MeasuredGFlops,
		"EST_DELIVERED":      model.DeliveredGFlops(),
		"EST_CONFIDENCE":     model.Confidence,
		"EST_AGE_S":          model.AgeSeconds,
		"EST_AVG_QUEUE":      model.MeanQueueDepth,
		"EST_TWAIT_BASE":     model.WaitBaseSeconds,
		"EST_TWAIT_PERDEPTH": model.WaitPerDepthSeconds,
		"EST_WARM":           warm,
	}
}
