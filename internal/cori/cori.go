// Package cori implements the resource-information collector and performance
// forecaster the paper's conclusion calls for: in real DIET the CoRI
// (Collector of Resource Information) and FAST layers feed plug-in schedulers
// with richer server information than the static estimation vector, and the
// paper notes a better makespan "could be attained by writing a plug-in
// scheduler" driven by such data.
//
// Each SeD hosts a Monitor. The Monitor records the history of completed
// solves — duration, work size, queue depth at admission — into a bounded
// ring per service, and maintains two online duration models:
//
//   - an EWMA of solve durations (fixed per-sample weight; the separate
//     Confidence signal handles wall-clock staleness), the right predictor
//     for constant-cost services and the fallback when work sizes are
//     unknown;
//   - an online least-squares fit duration ≈ base + perGFlop·work, which
//     captures how a heterogeneous work size maps to time on *this* server
//     (the slope is effectively the inverse of the server's delivered power,
//     measured rather than advertised).
//
// Forecast answers "how long would work GFlops take here, and how long until
// the server drains what it already accepted" — the two quantities the
// forecast-aware plug-in schedulers in internal/scheduler rank by. The same
// models feed two more decision points: Model.DeliveredGFlops gives
// measured-power deployment planning (internal/deploy) the throughput each
// SeD actually sustains, and Monitor.Forecast gives batch reservation
// sizing (internal/batch.WalltimePolicy) the duration a walltime grant must
// cover.
package cori

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/scheduler"
)

// Sample is one completed solve observation.
type Sample struct {
	Service    string
	WorkGFlops float64       // caller's work estimate; 0 when unknown
	Duration   time.Duration // compute time, excluding queue wait
	QueueDepth int           // requests already queued when this one was admitted
	At         time.Time     // completion time
}

// Config tunes a Monitor. The zero value selects sensible defaults.
type Config struct {
	// Window bounds the per-service history ring (default 64).
	Window int
	// Alpha is the EWMA weight of the newest sample (default 0.25).
	Alpha float64
	// HalfLife is the staleness half-life of forecast confidence: a model
	// whose newest sample is HalfLife old is trusted half as much
	// (default 1h, roughly one paper-scale solve).
	HalfLife time.Duration
	// Now overrides the clock, letting tests drive staleness decay
	// deterministically and the simulator run the Monitor in virtual time.
	// Defaults to time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.25
	}
	if c.HalfLife <= 0 {
		c.HalfLife = time.Hour
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// history is the bounded per-service record plus the online models.
type history struct {
	ring  []Sample // bounded; oldest overwritten first
	next  int      // ring write cursor
	count int      // total samples ever observed (≥ len(ring) entries kept)

	ewmaSeconds float64
	lastAt      time.Time

	// Online least-squares accumulators over the *ring* contents are
	// recomputed on demand; keeping them windowed (not lifetime sums) lets
	// the model track servers whose delivered power drifts.
}

// Model is a snapshot of the forecaster's state for one service — the
// extended estimation vector a SeD copies into scheduler.Estimate.
type Model struct {
	Service string
	Samples int // total solves observed (lifetime)
	Window  int // solves currently in the ring

	// EWMASeconds is the exponentially weighted recent solve duration
	// (per-sample weight Alpha; staleness shows up in Confidence, not here).
	EWMASeconds float64
	// BaseSeconds and PerGFlopSeconds are the least-squares fit
	// duration ≈ BaseSeconds + PerGFlopSeconds·work. PerGFlopSeconds is 0
	// when the window holds no work-size spread to regress on (unknown or
	// constant work), in which case EWMASeconds is the whole model.
	BaseSeconds     float64
	PerGFlopSeconds float64
	// MeasuredGFlops is the delivered power implied by the fit (1/slope),
	// 0 when the slope is unavailable.
	MeasuredGFlops float64
	// MeanWorkGFlops is the average work size of ring samples that carried a
	// work estimate, 0 when none did. Together with EWMASeconds it yields a
	// delivered-power estimate even when the window has no work-size spread
	// to regress on (see DeliveredGFlops).
	MeanWorkGFlops float64
	// Confidence ∈ (0,1]: 2^(-age/HalfLife) where age is the time since the
	// newest sample. Fresh history ≈ 1; stale history decays toward 0.
	Confidence float64
	// AgeSeconds is that age, for reporting.
	AgeSeconds float64
	// MeanQueueDepth is the average queue depth solves met at admission —
	// the contention signal.
	MeanQueueDepth float64
}

// SolveSeconds predicts the duration of work GFlops under this model;
// it returns a negative value when the model holds no samples. It delegates
// to scheduler.Estimate.ForecastSolveSeconds so the collector and the
// policies share one prediction implementation.
func (m Model) SolveSeconds(workGFlops float64) float64 {
	var est scheduler.Estimate
	m.ApplyToEstimate(&est, 0)
	return est.ForecastSolveSeconds(workGFlops)
}

// DeliveredGFlops is the best available delivered-power estimate for the
// server: the regression slope's implied power when the window has work-size
// spread, else the throughput implied by running the mean observed work size
// in the EWMA duration, else 0 (no sample ever carried a work estimate).
// This is the capability signal measured-power deployment planning
// (internal/deploy) places SeDs by.
func (m Model) DeliveredGFlops() float64 {
	if m.MeasuredGFlops > 0 {
		return m.MeasuredGFlops
	}
	if m.MeanWorkGFlops > 0 && m.EWMASeconds > 0 {
		return m.MeanWorkGFlops / m.EWMASeconds
	}
	return 0
}

// ApplyToEstimate copies the model into est's forecast-extension fields,
// with drainSeconds (see Monitor.DrainSeconds) as the pending-work forecast.
// Both the live diet.SeD and the simulator's mirrored SeD build their
// estimation vectors through this one projection, so the two paths cannot
// drift.
func (m Model) ApplyToEstimate(est *scheduler.Estimate, drainSeconds float64) {
	est.HasForecast = true
	est.ForecastSamples = m.Samples
	est.EWMASolveSeconds = m.EWMASeconds
	est.ForecastBaseS = m.BaseSeconds
	est.ForecastPerGFlopS = m.PerGFlopSeconds
	est.ForecastConfidence = m.Confidence
	est.PendingWorkSeconds = drainSeconds
}

// DrainSeconds forecasts how long the server needs to work off its
// accepted-but-unfinished solves: per-service pending counts, each priced at
// that service's recent EWMA duration, shared over capacity slots. A pending
// service with no history of its own (nothing completed yet) borrows the
// proxy model's EWMA rather than being priced at zero.
func (m *Monitor) DrainSeconds(pending map[string]int, proxy Model, capacity int) float64 {
	if capacity < 1 {
		capacity = 1
	}
	// Only the cached EWMAs are needed — skip the full Model regression,
	// this sits on the per-request estimation hot path.
	m.mu.Lock()
	defer m.mu.Unlock()
	var total float64
	for svc, n := range pending {
		if n <= 0 {
			continue
		}
		ewma := proxy.EWMASeconds
		if h := m.svc[svc]; h != nil && h.count > 0 {
			ewma = h.ewmaSeconds
		}
		total += float64(n) * ewma
	}
	return total / float64(capacity)
}

// Monitor collects per-service solve history for one server and forecasts
// solve durations. It is safe for concurrent use.
type Monitor struct {
	cfg Config
	now func() time.Time

	mu  sync.Mutex
	svc map[string]*history
}

// NewMonitor returns a Monitor with the given configuration.
func NewMonitor(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{cfg: cfg, now: cfg.Now, svc: make(map[string]*history)}
}

// SetNow rebinds the Monitor's clock (nil restores time.Now). The simulator
// uses it to carry a trained Monitor into a fresh virtual-time run.
func (m *Monitor) SetNow(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	m.mu.Lock()
	m.now = now
	m.mu.Unlock()
}

// Observe records one completed solve. Zero-duration samples are clamped to
// a microsecond so models stay positive.
func (m *Monitor) Observe(s Sample) {
	if s.Service == "" {
		return
	}
	if s.Duration <= 0 {
		s.Duration = time.Microsecond
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.At.IsZero() {
		s.At = m.now()
	}
	h := m.svc[s.Service]
	if h == nil {
		h = &history{ring: make([]Sample, 0, m.cfg.Window)}
		m.svc[s.Service] = h
	}
	if len(h.ring) < m.cfg.Window {
		h.ring = append(h.ring, s)
	} else {
		h.ring[h.next] = s
	}
	h.next = (h.next + 1) % m.cfg.Window
	h.count++
	d := s.Duration.Seconds()
	if h.count == 1 {
		h.ewmaSeconds = d
	} else {
		h.ewmaSeconds = m.cfg.Alpha*d + (1-m.cfg.Alpha)*h.ewmaSeconds
	}
	if s.At.After(h.lastAt) {
		h.lastAt = s.At
	}
}

// Model snapshots the forecaster state for a service. ok is false when the
// Monitor has never observed the service.
func (m *Monitor) Model(service string) (Model, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.svc[service]
	if h == nil || h.count == 0 {
		return Model{Service: service}, false
	}
	out := Model{
		Service:     service,
		Samples:     h.count,
		Window:      len(h.ring),
		EWMASeconds: h.ewmaSeconds,
	}
	// Windowed least squares of duration on work, over samples that carry a
	// work estimate. Needs spread in work sizes: with a single distinct work
	// value the slope is undefined and the EWMA is the better model.
	var n, sw, sd, sww, swd float64
	var qsum float64
	for _, s := range h.ring {
		qsum += float64(s.QueueDepth)
		if s.WorkGFlops <= 0 {
			continue
		}
		w, d := s.WorkGFlops, s.Duration.Seconds()
		n++
		sw += w
		sd += d
		sww += w * w
		swd += w * d
	}
	out.MeanQueueDepth = qsum / float64(len(h.ring))
	if n > 0 {
		out.MeanWorkGFlops = sw / n
	}
	if n >= 2 {
		det := n*sww - sw*sw
		if det > 1e-9*sww { // guard against a degenerate (constant-work) window
			slope := (n*swd - sw*sd) / det
			if slope > 0 {
				out.PerGFlopSeconds = slope
				out.BaseSeconds = (sd - slope*sw) / n
				out.MeasuredGFlops = 1 / slope
			}
		}
	}
	age := m.now().Sub(h.lastAt)
	if age < 0 {
		age = 0
	}
	out.AgeSeconds = age.Seconds()
	out.Confidence = math.Exp2(-age.Seconds() / m.cfg.HalfLife.Seconds())
	return out, true
}

// Forecast predicts the solve duration of work GFlops for a service.
// ok is false (and seconds negative) when there is no history to predict
// from — callers must then fall back to static information such as the
// advertised power.
func (m *Monitor) Forecast(service string, workGFlops float64) (seconds float64, ok bool) {
	model, ok := m.Model(service)
	if !ok {
		return -1, false
	}
	return model.SolveSeconds(workGFlops), true
}

// Services lists the services with history, sorted.
func (m *Monitor) Services() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.svc))
	for name := range m.svc {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Metrics exposes the CoRI-style extended estimation tags for a service,
// named after the EST_* constants of DIET's CoRI API. Absent service →
// empty map.
func (m *Monitor) Metrics(service string) map[string]float64 {
	model, ok := m.Model(service)
	if !ok {
		return map[string]float64{}
	}
	return map[string]float64{
		"EST_NBSAMPLES":     float64(model.Samples),
		"EST_TCOMP":         model.EWMASeconds,
		"EST_TCOMP_BASE":    model.BaseSeconds,
		"EST_TCOMP_PERGF":   model.PerGFlopSeconds,
		"EST_MEASURED_FLOP": model.MeasuredGFlops,
		"EST_DELIVERED":     model.DeliveredGFlops(),
		"EST_CONFIDENCE":    model.Confidence,
		"EST_AGE_S":         model.AgeSeconds,
		"EST_AVG_QUEUE":     model.MeanQueueDepth,
	}
}
