package cori

import (
	"fmt"

	"repro/internal/scheduler"
)

// This file prices dependency chains: it turns the per-service duration
// forecasts the monitors produce into the critical-path weights a workflow
// scheduler dispatches by. Both the live runner (internal/workflow) and the
// virtual-time mirror (internal/simgrid) share these helpers, so the A11
// ablation measures exactly the arithmetic the live campaigns run.

// BestEstimateSeconds prices workGFlops of one service from a collected
// estimate vector: the cheapest prediction across the offered servers,
// preferring each server's trusted forecast model and falling back to its
// advertised power when the model is absent or stale (the same graceful
// degradation as the forecast-aware policies). byModel reports whether the
// winning price came from a trusted model — the "forecast-priced" signal the
// workflow runner surfaces per dispatch. minConfidence <= 0 selects the
// shared scheduler.DefaultMinConfidence floor.
func BestEstimateSeconds(ests []scheduler.Estimate, workGFlops, minConfidence float64) (seconds float64, byModel bool) {
	if minConfidence <= 0 {
		minConfidence = scheduler.DefaultMinConfidence
	}
	found := false
	for _, e := range ests {
		sec, model := -1.0, false
		if e.HasForecast && e.ForecastSamples > 0 && e.ForecastConfidence >= minConfidence {
			if p := e.ForecastSolveSeconds(workGFlops); p > 0 {
				sec, model = p, true
			}
		}
		if sec <= 0 {
			power := e.PowerGFlops
			if power <= 0 {
				power = 1
			}
			sec, model = workGFlops/power, false
		}
		if !found || sec < seconds || (sec == seconds && model && !byModel) {
			seconds, byModel, found = sec, model, true
		}
	}
	if !found {
		return 0, false
	}
	return seconds, byModel
}

// ChainPrices computes, for every node of a DAG, the price of its longest
// downstream chain: seconds[node] plus the most expensive chain among the
// nodes that depend on it. Launching ready nodes in decreasing order of this
// quantity is critical-path-first scheduling — the longest forecast-weighted
// chain advances first while cheaper branches overlap it. dependents maps a
// node to the nodes that depend on it; every referenced node must have an
// entry in seconds, and a cycle is an error.
func ChainPrices(seconds map[string]float64, dependents map[string][]string) (map[string]float64, error) {
	out := make(map[string]float64, len(seconds))
	const (
		onStack = 1
		done    = 2
	)
	state := make(map[string]int, len(seconds))
	var visit func(id string) (float64, error)
	visit = func(id string) (float64, error) {
		if _, ok := seconds[id]; !ok {
			return 0, fmt.Errorf("cori: chain pricing: unknown node %q", id)
		}
		switch state[id] {
		case done:
			return out[id], nil
		case onStack:
			return 0, fmt.Errorf("cori: chain pricing: cycle through %q", id)
		}
		state[id] = onStack
		best := 0.0
		for _, dep := range dependents[id] {
			v, err := visit(dep)
			if err != nil {
				return 0, err
			}
			if v > best {
				best = v
			}
		}
		out[id] = seconds[id] + best
		state[id] = done
		return out[id], nil
	}
	for id := range seconds {
		if _, err := visit(id); err != nil {
			return nil, err
		}
	}
	return out, nil
}
