package cori

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// This file is the durability layer the long-lived DIET deployments of the
// paper assume: NWS-style forecasters treat history as a durable asset, so a
// Monitor's state — ring contents, online models, installed priors — can be
// serialized to a versioned JSON snapshot, saved atomically, and restored
// into a fresh Monitor after a SeD restart without losing any training.

// SnapshotVersion is the schema version written by Snapshot and required by
// Restore. Bump it whenever the serialized shape changes incompatibly;
// decoding rejects any other version rather than guessing.
const SnapshotVersion = 1

// ServiceSnapshot is the persisted state of one service's history.
type ServiceSnapshot struct {
	Service     string
	Samples     []Sample // ring contents, oldest first
	Count       int      // lifetime samples observed
	EWMASeconds float64
	LastAt      time.Time

	// The installed gossip prior, when any (see Monitor.WarmStart).
	Prior       *Model    `json:",omitempty"`
	PriorWeight float64   `json:",omitempty"`
	PriorAt     time.Time `json:",omitempty"`
}

// Snapshot is a versioned, serializable image of a Monitor's training. The
// Window/Alpha/HalfLifeSeconds fields record the configuration the snapshot
// was taken under, for inspection; Restore keeps the restoring Monitor's own
// configuration and clips rings to its window.
type Snapshot struct {
	Version         int
	SavedAt         time.Time
	Window          int
	Alpha           float64
	HalfLifeSeconds float64
	Services        []ServiceSnapshot
}

// Snapshot captures the Monitor's full state. Everything is deep-copied, so
// the caller may serialize or restore it while the Monitor keeps observing.
func (m *Monitor) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Snapshot{
		Version:         SnapshotVersion,
		SavedAt:         m.now(),
		Window:          m.cfg.Window,
		Alpha:           m.cfg.Alpha,
		HalfLifeSeconds: m.cfg.HalfLife.Seconds(),
	}
	for svc, h := range m.svc {
		ss := ServiceSnapshot{
			Service:     svc,
			Count:       h.count,
			EWMASeconds: h.ewmaSeconds,
			LastAt:      h.lastAt,
			PriorWeight: h.priorWeight,
			PriorAt:     h.priorAt,
		}
		// Unroll the ring into chronological order (oldest first).
		if len(h.ring) > 0 {
			ss.Samples = make([]Sample, 0, len(h.ring))
			start := 0
			if len(h.ring) == m.cfg.Window {
				start = h.next // full ring: the write cursor points at the oldest
			}
			for i := 0; i < len(h.ring); i++ {
				ss.Samples = append(ss.Samples, h.ring[(start+i)%len(h.ring)])
			}
		}
		if h.prior != nil {
			p := *h.prior
			ss.Prior = &p
		}
		out.Services = append(out.Services, ss)
	}
	sortServiceSnapshots(out.Services)
	return out
}

// Restore replaces the Monitor's state with the snapshot's. The Monitor's
// own configuration wins: rings longer than the current window are clipped
// to their newest Window samples. Restore rejects snapshots of any other
// schema version.
func (m *Monitor) Restore(s Snapshot) error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("cori: snapshot schema version %d, this build reads %d", s.Version, SnapshotVersion)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	svc := make(map[string]*history, len(s.Services))
	for _, ss := range s.Services {
		if ss.Service == "" {
			return fmt.Errorf("cori: snapshot holds a service entry with no name")
		}
		if _, dup := svc[ss.Service]; dup {
			return fmt.Errorf("cori: snapshot holds duplicate entries for service %q", ss.Service)
		}
		samples := ss.Samples
		if len(samples) > m.cfg.Window {
			samples = samples[len(samples)-m.cfg.Window:] // keep the newest
		}
		h := &history{
			ring:        make([]Sample, len(samples), m.cfg.Window),
			next:        len(samples) % m.cfg.Window,
			count:       ss.Count,
			ewmaSeconds: ss.EWMASeconds,
			lastAt:      ss.LastAt,
			priorWeight: ss.PriorWeight,
			priorAt:     ss.PriorAt,
		}
		copy(h.ring, samples)
		if h.count < len(h.ring) {
			h.count = len(h.ring)
		}
		if ss.Prior != nil {
			p := *ss.Prior
			h.prior = &p
		}
		svc[ss.Service] = h
	}
	m.svc = svc
	return nil
}

// Encode serializes the snapshot as indented JSON.
func (s Snapshot) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// DecodeSnapshot parses a serialized snapshot, rejecting corrupt input and
// any schema version this build does not read.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("cori: corrupt snapshot: %w", err)
	}
	if s.Version != SnapshotVersion {
		return Snapshot{}, fmt.Errorf("cori: snapshot schema version %d, this build reads %d", s.Version, SnapshotVersion)
	}
	return s, nil
}

// SaveFile atomically writes the Monitor's snapshot to path: the JSON lands
// in a temp file in the same directory first and is renamed over the target,
// so a crash mid-save never corrupts the previous snapshot.
func (m *Monitor) SaveFile(path string) error {
	data, err := m.Snapshot().Encode()
	if err != nil {
		return fmt.Errorf("cori: encoding snapshot: %w", err)
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("cori: saving snapshot: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cori: saving snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cori: saving snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cori: saving snapshot: %w", err)
	}
	return nil
}

// LoadFile restores the Monitor from a snapshot file written by SaveFile.
func (m *Monitor) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("cori: loading snapshot: %w", err)
	}
	s, err := DecodeSnapshot(data)
	if err != nil {
		return err
	}
	return m.Restore(s)
}

// sortServiceSnapshots orders entries by service name so snapshots are
// byte-stable for identical state.
func sortServiceSnapshots(ss []ServiceSnapshot) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Service < ss[j].Service })
}
