package cori

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// trainMonitor drives a deterministic mixed history into a monitor: two
// services, varied work sizes, depth-correlated waits, and an installed
// prior — every piece of state a snapshot must carry.
func trainMonitor(m *Monitor) {
	for i := 0; i < 20; i++ {
		work := float64(1000 + 500*i)
		m.Observe(Sample{
			Service:    "zoom",
			WorkGFlops: work,
			Duration:   time.Duration(work / 40 * float64(time.Second)),
			QueueDepth: i % 5,
			Wait:       time.Duration(1+10*(i%5)) * time.Second,
		})
	}
	for i := 0; i < 5; i++ {
		m.Observe(Sample{Service: "halo", Duration: 30 * time.Second})
	}
	m.WarmStart(Model{Service: "merger", Samples: 10, EWMASeconds: 120, Confidence: 0.8})
}

// modelsEqual compares the full Model output of two monitors for a service.
func modelsEqual(t *testing.T, a, b *Monitor, service string) {
	t.Helper()
	ma, oka := a.Model(service)
	mb, okb := b.Model(service)
	if oka != okb {
		t.Fatalf("%s: ok %v vs %v", service, oka, okb)
	}
	if !reflect.DeepEqual(ma, mb) {
		t.Fatalf("%s: models diverge after round-trip:\n  %+v\n  %+v", service, ma, mb)
	}
	for _, work := range []float64{0, 500, 5000, 50000} {
		if ga, gb := ma.SolveSeconds(work), mb.SolveSeconds(work); math.Abs(ga-gb) > 1e-12 {
			t.Fatalf("%s: SolveSeconds(%g) %g vs %g", service, work, ga, gb)
		}
	}
}

// TestSnapshotRoundTrip is the kill-and-restart guarantee: save → load into
// a fresh monitor → identical Model output, ring bounds and prior included.
func TestSnapshotRoundTrip(t *testing.T) {
	clk := newFakeClock()
	cfg := Config{Window: 16, Now: clk.Now}
	m := NewMonitor(cfg)
	trainMonitor(m)

	data, err := m.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewMonitor(cfg)
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for _, svc := range []string{"zoom", "halo", "merger", "never-seen"} {
		modelsEqual(t, m, restored, svc)
	}
	// The restart keeps training: new observations continue the same ring.
	for _, mon := range []*Monitor{m, restored} {
		mon.Observe(Sample{Service: "zoom", WorkGFlops: 3000, Duration: 75 * time.Second, At: clk.Now()})
	}
	modelsEqual(t, m, restored, "zoom")
	// Staleness decays identically on both sides of the restart.
	clk.Advance(2 * time.Hour)
	modelsEqual(t, m, restored, "zoom")
}

// TestSnapshotRejectsCorruptAndOldVersions covers the failure paths: corrupt
// JSON, an old (or future) schema version, and malformed service entries.
func TestSnapshotRejectsCorruptAndOldVersions(t *testing.T) {
	if _, err := DecodeSnapshot([]byte(`{"Version": 1,`)); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt JSON must be rejected, got %v", err)
	}
	old, err := json.Marshal(Snapshot{Version: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(old); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("old schema version must be rejected, got %v", err)
	}
	future, err := json.Marshal(Snapshot{Version: SnapshotVersion + 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(future); err == nil {
		t.Fatal("future schema version must be rejected")
	}
	m := NewMonitor(Config{})
	if err := m.Restore(Snapshot{Version: SnapshotVersion + 1}); err == nil {
		t.Fatal("Restore must reject a wrong-version snapshot")
	}
	bad := Snapshot{Version: SnapshotVersion, Services: []ServiceSnapshot{{Service: ""}}}
	if err := m.Restore(bad); err == nil {
		t.Fatal("Restore must reject a nameless service entry")
	}
	dup := Snapshot{Version: SnapshotVersion, Services: []ServiceSnapshot{
		{Service: "a", Count: 1}, {Service: "a", Count: 2},
	}}
	if err := m.Restore(dup); err == nil {
		t.Fatal("Restore must reject duplicate service entries")
	}
}

// TestSnapshotFilePersistence exercises the atomic file path end to end and
// the missing-file boot case.
func TestSnapshotFilePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "monitor.json")

	clk := newFakeClock()
	m := NewMonitor(Config{Now: clk.Now})
	if err := m.LoadFile(path); err == nil {
		t.Fatal("loading a missing snapshot must error")
	}
	trainMonitor(m)
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp litter after a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("save must leave exactly the snapshot, found %d entries", len(entries))
	}
	restored := NewMonitor(Config{Now: clk.Now})
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	for _, svc := range []string{"zoom", "halo", "merger"} {
		modelsEqual(t, m, restored, svc)
	}
	// A save over an existing snapshot replaces it atomically.
	m.Observe(Sample{Service: "zoom", WorkGFlops: 9000, Duration: 225 * time.Second})
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	again := NewMonitor(Config{Now: clk.Now})
	if err := again.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	modelsEqual(t, m, again, "zoom")
	// Corrupting the file surfaces at load.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := again.LoadFile(path); err == nil {
		t.Fatal("loading a corrupt snapshot file must error")
	}
}

// TestRestoreClipsToWindow loads a wide snapshot into a narrower monitor:
// the restoring configuration wins and only the newest samples survive.
func TestRestoreClipsToWindow(t *testing.T) {
	wide := NewMonitor(Config{Window: 64})
	for i := 0; i < 64; i++ {
		work := float64(1000 + 100*i)
		speed := 10.0
		if i >= 56 { // the newest 8 run on a faster regime
			speed = 100
		}
		wide.Observe(Sample{Service: "svc", WorkGFlops: work, Duration: time.Duration(work / speed * float64(time.Second))})
	}
	narrow := NewMonitor(Config{Window: 8})
	if err := narrow.Restore(wide.Snapshot()); err != nil {
		t.Fatal(err)
	}
	model, ok := narrow.Model("svc")
	if !ok {
		t.Fatal("restored monitor must hold the service")
	}
	if model.Window != 8 {
		t.Fatalf("Window = %d, want clipped to 8", model.Window)
	}
	if model.Samples != 64 {
		t.Fatalf("lifetime Samples = %d, want 64 preserved", model.Samples)
	}
	if math.Abs(model.MeasuredGFlops-100) > 1 {
		t.Fatalf("clip must keep the newest samples: MeasuredGFlops = %g, want ≈100", model.MeasuredGFlops)
	}
}

// TestConcurrentSnapshotRestore exercises the full locking contract under
// -race: observations, model reads, snapshots, restores and warm starts from
// concurrent goroutines.
func TestConcurrentSnapshotRestore(t *testing.T) {
	m := NewMonitor(Config{Window: 16})
	trainMonitor(m)
	snap := m.Snapshot()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch g % 3 {
				case 0:
					m.Observe(Sample{Service: "zoom", WorkGFlops: float64(1000 + i), Duration: time.Second, QueueDepth: i % 4, Wait: time.Second})
					m.WarmStart(Model{Service: "merger", Samples: 5, EWMASeconds: 60, Confidence: 0.9})
				case 1:
					if model, ok := m.Model("zoom"); ok {
						m.DrainEstimate(model, map[string]int{"zoom": 2}, 2, 1)
					}
					m.Metrics("halo")
					m.Services()
				default:
					s := m.Snapshot()
					if err := m.Restore(snap); err != nil {
						t.Error(err)
						return
					}
					_ = s
				}
			}
		}(g)
	}
	wg.Wait()
	if _, ok := m.Model("zoom"); !ok {
		t.Fatal("monitor must still answer after the concurrent storm")
	}
}
