package cori

import (
	"math"
	"testing"
	"time"
)

// observeLinear feeds samples from a server that delivers `gflops` over the
// given work sizes.
func observeLinear(m *Monitor, service string, gflops float64, works []float64) {
	for _, w := range works {
		m.Observe(Sample{Service: service, WorkGFlops: w, Duration: time.Duration(w / gflops * float64(time.Second))})
	}
}

// TestMergeModelsConvergence is the gossip-merge guarantee: two half-trained
// monitors (odd/even halves of one workload) merge to within tolerance of
// the monitor that saw everything.
func TestMergeModelsConvergence(t *testing.T) {
	works := make([]float64, 40)
	for i := range works {
		works[i] = float64(1000 + 350*i)
	}
	full := NewMonitor(Config{})
	halfA := NewMonitor(Config{})
	halfB := NewMonitor(Config{})
	observeLinear(full, "zoom", 40, works)
	var evens, odds []float64
	for i, w := range works {
		if i%2 == 0 {
			evens = append(evens, w)
		} else {
			odds = append(odds, w)
		}
	}
	observeLinear(halfA, "zoom", 40, evens)
	observeLinear(halfB, "zoom", 40, odds)

	fullModel, _ := full.Model("zoom")
	a, _ := halfA.Model("zoom")
	b, _ := halfB.Model("zoom")
	merged, ok := MergeModels(a, b)
	if !ok {
		t.Fatal("merging two trained models must succeed")
	}
	if merged.Samples != fullModel.Samples {
		t.Fatalf("merged Samples = %d, want %d", merged.Samples, fullModel.Samples)
	}
	if rel := math.Abs(merged.DeliveredGFlops()-fullModel.DeliveredGFlops()) / fullModel.DeliveredGFlops(); rel > 0.05 {
		t.Fatalf("merged delivered power %g vs full %g (rel %.3f), want within 5%%",
			merged.DeliveredGFlops(), fullModel.DeliveredGFlops(), rel)
	}
	for _, work := range []float64{2000, 8000, 20000} {
		got, want := merged.SolveSeconds(work), fullModel.SolveSeconds(work)
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Fatalf("merged SolveSeconds(%g) = %g vs full %g (rel %.3f), want within 5%%", work, got, want, rel)
		}
	}
	// A stale model must barely move a fresh one: weight is confidence×samples.
	stale := a
	stale.Confidence = 0.01
	stale.EWMASeconds = 10 * a.EWMASeconds
	dominated, _ := MergeModels(b, stale)
	if rel := math.Abs(dominated.EWMASeconds-b.EWMASeconds) / b.EWMASeconds; rel > 0.15 {
		t.Fatalf("a 0.01-confidence model shifted the merge by %.1f%%, want < 15%%", rel*100)
	}
	if _, ok := MergeModels(); ok {
		t.Fatal("merging nothing must report !ok")
	}
	if _, ok := MergeModels(Model{Service: "empty"}); ok {
		t.Fatal("merging only unusable models must report !ok")
	}
}

// TestRegistryGossipConvergence checks the registry's merge semantics:
// per-source last-writer-wins, idempotent under repeated exchange, cluster
// priors keyed by resource class.
func TestRegistryGossipConvergence(t *testing.T) {
	t0 := time.Unix(1_000_000, 0)
	mkModel := func(ewma float64) []Model {
		return []Model{{Service: "zoom", Samples: 10, EWMASeconds: ewma, Confidence: 1}}
	}
	parent, child := NewRegistry(), NewRegistry()
	child.Update("SeD-A", "grillon", t0, mkModel(100))
	child.Update("SeD-B", "grillon", t0, mkModel(200))
	child.Update("SeD-C", "helios", t0, mkModel(999))

	// One exchange in each direction converges the two registries.
	parent.Merge(child.Snapshot())
	child.Merge(parent.Snapshot())
	for _, r := range []*Registry{parent, child} {
		prior, ok := r.Prior("grillon", "zoom")
		if !ok {
			t.Fatal("grillon prior must exist after gossip")
		}
		if math.Abs(prior.EWMASeconds-150) > 1e-9 { // equal weights → plain mean
			t.Fatalf("grillon prior EWMA = %g, want 150", prior.EWMASeconds)
		}
		if prior.Samples != 20 {
			t.Fatalf("grillon prior Samples = %d, want 20", prior.Samples)
		}
		if _, ok := r.Prior("grillon", "other-svc"); ok {
			t.Fatal("unknown service must have no prior")
		}
		if _, ok := r.Prior("violette", "zoom"); ok {
			t.Fatal("unknown cluster must have no prior")
		}
	}

	// Re-merging the same snapshot is a no-op (idempotence)...
	before, _ := parent.Prior("grillon", "zoom")
	parent.Merge(child.Snapshot())
	parent.Merge(child.Snapshot())
	after, _ := parent.Prior("grillon", "zoom")
	if before.EWMASeconds != after.EWMASeconds || before.Samples != after.Samples {
		t.Fatalf("repeated merges must not double-count: %+v vs %+v", before, after)
	}
	// ...and an older report never overwrites a newer one, in either merge
	// direction.
	parent.Update("SeD-A", "grillon", t0.Add(time.Hour), mkModel(300))
	stale := NewRegistry()
	stale.Update("SeD-A", "grillon", t0.Add(time.Minute), mkModel(1))
	parent.Merge(stale.Snapshot())
	prior, _ := parent.Prior("grillon", "zoom")
	if math.Abs(prior.EWMASeconds-250) > 1e-9 { // (300+200)/2
		t.Fatalf("stale gossip must lose to the newer report: EWMA = %g, want 250", prior.EWMASeconds)
	}
	if got := parent.Clusters(); len(got) != 2 || got[0] != "grillon" || got[1] != "helios" {
		t.Fatalf("Clusters = %v, want [grillon helios]", got)
	}
	// Unlabelled or empty contributions are dropped, and so are Warm models
	// — a borrowed prior must not echo back as independent measurement.
	parent.Update("SeD-X", "", t0, mkModel(5))
	parent.Update("", "grillon", t0, mkModel(5))
	parent.Update("SeD-Y", "grillon", t0, nil)
	warmEcho := mkModel(7)
	warmEcho[0].Warm = true
	parent.Update("SeD-warm", "grillon", t0.Add(2*time.Hour), warmEcho)
	if ms := parent.PriorsFor("grillon"); len(ms) != 1 {
		t.Fatalf("PriorsFor(grillon) = %d services, want 1", len(ms))
	}
	echoed, _ := parent.Prior("grillon", "zoom")
	if echoed.Samples != 20 { // still only SeD-A + SeD-B, 10 each
		t.Fatalf("warm echo must not join the merge: Samples = %d, want 20", echoed.Samples)
	}

	// A snapshot of any other schema version is rejected outright.
	bad := child.Snapshot()
	bad.Version = SnapshotVersion + 1
	if err := parent.Merge(bad); err == nil {
		t.Fatal("Merge must reject a version-mismatched snapshot")
	}
}

// TestWarmStartBlendsPrior covers the consumer side of gossip: a monitor
// seeded with a cluster prior answers confidently before its first local
// sample, and local history takes the model over as it accumulates.
func TestWarmStartBlendsPrior(t *testing.T) {
	clk := newFakeClock()
	m := NewMonitor(Config{Now: clk.Now, HalfLife: time.Hour})
	prior := Model{
		Service: "zoom", Samples: 32, EWMASeconds: 500,
		BaseSeconds: 0, PerGFlopSeconds: 0.025, MeasuredGFlops: 40,
		Confidence: 1,
	}
	m.WarmStart(prior)

	model, ok := m.Model("zoom")
	if !ok {
		t.Fatal("a warm-started service must answer")
	}
	if !model.Warm {
		t.Fatal("warm model must be flagged Warm")
	}
	if model.Samples <= 0 || model.Confidence <= 0 {
		t.Fatalf("warm model must look trained: samples=%d confidence=%g", model.Samples, model.Confidence)
	}
	// The prior's fit answers work-size queries immediately.
	if got := model.SolveSeconds(20000); math.Abs(got-500) > 1e-9 {
		t.Fatalf("warm SolveSeconds(20000) = %g, want 500 from the prior fit", got)
	}
	// The prior keeps decaying on the local clock.
	clk.Advance(time.Hour)
	aged, _ := m.Model("zoom")
	if math.Abs(aged.Confidence-0.5) > 1e-9 {
		t.Fatalf("warm confidence after one half-life = %g, want 0.5", aged.Confidence)
	}
	// Monitor surface methods see the warm service.
	if svcs := m.Services(); len(svcs) != 1 || svcs[0] != "zoom" {
		t.Fatalf("Services = %v, want [zoom]", svcs)
	}
	if sec, ok := m.Forecast("zoom", 20000); !ok || math.Abs(sec-500) > 1e-9 {
		t.Fatalf("Forecast on warm service = (%g, %v), want (500, true)", sec, ok)
	}

	// Local observations from a server twice as fast as the prior pull the
	// blend toward the measurement, monotonically.
	last := aged.SolveSeconds(20000)
	for i := 0; i < 64; i++ {
		work := float64(10000 + 1000*(i%10))
		m.Observe(Sample{Service: "zoom", WorkGFlops: work, Duration: time.Duration(work / 80 * float64(time.Second)), At: clk.Now()})
		cur, _ := m.Model("zoom")
		if got := cur.SolveSeconds(20000); got > last+1e-9 {
			t.Fatalf("blend must move toward local measurements, went %g → %g at sample %d", last, got, i+1)
		} else {
			last = got
		}
	}
	trained, _ := m.Model("zoom")
	if got, want := trained.SolveSeconds(20000), 250.0; math.Abs(got-want)/want > 0.01 {
		t.Fatalf("a full window of local history must retire the prior: SolveSeconds = %g, want %g", got, want)
	}
	if trained.Warm {
		t.Fatal("a fully locally trained model must no longer be flagged Warm")
	}

	// A lighter prior never replaces a heavier one; unusable priors are
	// ignored entirely.
	m2 := NewMonitor(Config{Now: clk.Now})
	m2.WarmStart(Model{Service: "svc", Samples: 32, EWMASeconds: 100, Confidence: 1})
	m2.WarmStart(Model{Service: "svc", Samples: 2, EWMASeconds: 9999, Confidence: 0.5})
	got, _ := m2.Model("svc")
	if math.Abs(got.EWMASeconds-100) > 1e-9 {
		t.Fatalf("lighter prior must not replace the heavier one: EWMA = %g", got.EWMASeconds)
	}
	m2.WarmStart(Model{Service: "bogus"})
	m2.WarmStart(Model{Service: "bogus", Samples: 5})
	if _, ok := m2.Model("bogus"); ok {
		t.Fatal("priors with no duration signal must be ignored")
	}
}

// TestWaitRegressionReplacesDrainApprox covers the queue-wait regression: a
// window with depth spread predicts wait from the fitted line, and
// DrainEstimate prefers it over the pending × EWMA approximation.
func TestWaitRegressionReplacesDrainApprox(t *testing.T) {
	m := NewMonitor(Config{})
	// Waits generated by wait = 60·depth + 5 seconds.
	for i := 0; i < 12; i++ {
		depth := i % 4
		m.Observe(Sample{
			Service:    "zoom",
			Duration:   100 * time.Second,
			QueueDepth: depth,
			Wait:       time.Duration(60*depth+5) * time.Second,
		})
	}
	model, _ := m.Model("zoom")
	if model.WaitPerDepthSeconds <= 0 {
		t.Fatal("depth spread must fit a wait slope")
	}
	w, ok := model.WaitAtDepth(3)
	if !ok || math.Abs(w-185) > 1 {
		t.Fatalf("WaitAtDepth(3) = (%g, %v), want ≈185", w, ok)
	}
	// DrainEstimate uses the regression, not pending × EWMA (which would say
	// 6 × 100 s here).
	if got := m.DrainEstimate(model, map[string]int{"zoom": 6}, 6, 1); math.Abs(got-365) > 2 {
		t.Fatalf("DrainEstimate with a trained regression = %g, want ≈365", got)
	}

	// Without depth spread the regression declines and the approximation is
	// used unchanged.
	flat := NewMonitor(Config{})
	for i := 0; i < 6; i++ {
		flat.Observe(Sample{Service: "zoom", Duration: 100 * time.Second, QueueDepth: 2, Wait: 125 * time.Second})
	}
	fm, _ := flat.Model("zoom")
	if fm.WaitPerDepthSeconds != 0 {
		t.Fatalf("constant-depth window must decline the wait fit, got slope %g", fm.WaitPerDepthSeconds)
	}
	if _, ok := fm.WaitAtDepth(2); ok {
		t.Fatal("WaitAtDepth must report !ok without a fit")
	}
	want := flat.DrainSeconds(map[string]int{"zoom": 3}, fm, 1)
	if got := flat.DrainEstimate(fm, map[string]int{"zoom": 3}, 3, 1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("DrainEstimate without a fit = %g, want the DrainSeconds fallback %g", got, want)
	}
	// Samples that never observed their wait keep the fit unbiased — only
	// the depth-0 legacy samples (Wait unset) are excluded.
	legacy := NewMonitor(Config{})
	legacy.Observe(Sample{Service: "zoom", Duration: time.Second, QueueDepth: 5})
	lm, _ := legacy.Model("zoom")
	if lm.MeanWaitSeconds != 0 || lm.WaitPerDepthSeconds != 0 {
		t.Fatalf("wait-less samples must not train the regression: %+v", lm)
	}
}
