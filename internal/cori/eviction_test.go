package cori

import (
	"reflect"
	"testing"
	"time"
)

// reportAt is a test helper: one source reporting a single trained model at a
// given time with a given at-report confidence.
func reportAt(r *Registry, source, cluster string, at time.Time, confidence float64) {
	r.Update(source, cluster, at, []Model{{
		Service: "zoom", Samples: 10, Confidence: confidence, EWMASeconds: 30,
	}})
}

// TestRegistryEvictStaleThresholds drives the eviction rule over the decay
// table: effective confidence = reported × 2^(-age/halfLife), evicted when it
// drops below the floor.
func TestRegistryEvictStaleThresholds(t *testing.T) {
	epoch := time.Unix(1_000_000_000, 0).UTC()
	halfLife := time.Hour
	cases := []struct {
		name       string
		confidence float64 // at report time
		age        time.Duration
		floor      float64
		evicted    bool
	}{
		{"fresh full confidence stays", 1.0, 0, 0.05, false},
		{"one half-life halves", 1.0, time.Hour, 0.49, false},
		{"one half-life below a high floor", 1.0, time.Hour, 0.51, true},
		{"five half-lives decay past 5%", 1.0, 5 * time.Hour, 0.05, true},
		{"weak report dies quickly", 0.2, 2 * time.Hour, 0.06, true},
		{"weak but recent survives a low floor", 0.2, 0, 0.05, false},
		{"below-floor but live source never churns", 0.03, 30 * time.Second, 0.05, false},
		{"below-floor and stale is evicted", 0.03, time.Hour, 0.02, true},
		{"future report reads as recent", 1.0, -time.Hour, 0.99, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			reportAt(r, "sed", "grillon", epoch, tc.confidence)
			removed := r.EvictStale(epoch.Add(tc.age), halfLife, tc.floor)
			if got := len(removed) == 1; got != tc.evicted {
				t.Fatalf("evicted=%v, want %v (removed %v)", got, tc.evicted, removed)
			}
			_, held := r.SourceModel("sed", "zoom")
			if held == tc.evicted {
				t.Fatalf("SourceModel held=%v after eviction=%v", held, tc.evicted)
			}
		})
	}
}

// TestRegistryEvictStaleKeepsBestModel checks a source survives on its best
// model: one stale service plus one fresh service must keep the contribution.
func TestRegistryEvictStaleKeepsBestModel(t *testing.T) {
	epoch := time.Unix(1_000_000_000, 0).UTC()
	r := NewRegistry()
	r.Update("sed", "grillon", epoch, []Model{
		{Service: "old", Samples: 10, Confidence: 0.01, EWMASeconds: 30},
		{Service: "hot", Samples: 10, Confidence: 0.9, EWMASeconds: 40},
	})
	if removed := r.EvictStale(epoch, time.Hour, 0.1); len(removed) != 0 {
		t.Fatalf("a source with one trusted model must survive, removed %v", removed)
	}
	// Disabled sweeps are no-ops.
	if removed := r.EvictStale(epoch, 0, 0.1); removed != nil {
		t.Fatalf("halfLife<=0 must disable eviction, removed %v", removed)
	}
	if removed := r.EvictStale(epoch, time.Hour, 0); removed != nil {
		t.Fatalf("floor<=0 must disable eviction, removed %v", removed)
	}
}

// TestRegistryEvictionGossipConvergence proves eviction does not disturb
// gossip convergence: after both peers sweep with the same rule, exchanging
// snapshots in both directions still converges — to the evicted state, with
// the fresh contributions' priors intact and identical on both sides.
func TestRegistryEvictionGossipConvergence(t *testing.T) {
	epoch := time.Unix(1_000_000_000, 0).UTC()
	now := epoch.Add(10 * time.Hour)
	a, b := NewRegistry(), NewRegistry()
	// Both registries know the stale veteran; each also holds a fresh source
	// the other has not seen yet.
	reportAt(a, "stale-sed", "grillon", epoch, 1.0)
	reportAt(b, "stale-sed", "grillon", epoch, 1.0)
	reportAt(a, "fresh-a", "grillon", now, 0.9)
	reportAt(b, "fresh-b", "violette", now, 0.8)

	for _, r := range []*Registry{a, b} {
		removed := r.EvictStale(now, time.Hour, 0.05)
		if !reflect.DeepEqual(removed, []string{"stale-sed"}) {
			t.Fatalf("sweep must remove exactly the stale source, got %v", removed)
		}
	}

	// One full exchange: a's snapshot into b, b's into a (the heartbeat
	// gossip pattern), then a second sweep as the next round would run.
	if err := b.Merge(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	a.EvictStale(now, time.Hour, 0.05)
	b.EvictStale(now, time.Hour, 0.05)

	for name, r := range map[string]*Registry{"a": a, "b": b} {
		if _, held := r.SourceModel("stale-sed", "zoom"); held {
			t.Fatalf("registry %s resurrected the evicted source", name)
		}
		for _, fresh := range []string{"fresh-a", "fresh-b"} {
			if _, held := r.SourceModel(fresh, "zoom"); !held {
				t.Fatalf("registry %s lost fresh source %s to eviction", name, fresh)
			}
		}
	}
	// The merged cluster priors are identical on both sides — convergence.
	pa, okA := a.Prior("grillon", "zoom")
	pb, okB := b.Prior("grillon", "zoom")
	if !okA || !okB || !reflect.DeepEqual(pa, pb) {
		t.Fatalf("post-eviction priors diverge: a=%+v (%v) b=%+v (%v)", pa, okA, pb, okB)
	}
	if pa.Samples != 10 {
		t.Fatalf("prior must hold only the fresh contribution, got %d samples", pa.Samples)
	}
}
