package cori

import (
	"fmt"
	"testing"
	"time"
)

// benchMonitor returns a monitor with a full ring of mixed samples.
func benchMonitor(window int) *Monitor {
	m := NewMonitor(Config{Window: window})
	for i := 0; i < window; i++ {
		work := float64(1000 + 137*i)
		m.Observe(Sample{
			Service:    "zoom",
			WorkGFlops: work,
			Duration:   time.Duration(work / 40 * float64(time.Second)),
			QueueDepth: i % 6,
			Wait:       time.Duration(30*(i%6)+1) * time.Second,
		})
	}
	return m
}

// BenchmarkObserve measures the per-solve recording cost — the hot write on
// every completed solve.
func BenchmarkObserve(b *testing.B) {
	m := benchMonitor(64)
	s := Sample{Service: "zoom", WorkGFlops: 5000, Duration: 125 * time.Second, QueueDepth: 3, Wait: 90 * time.Second}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(s)
	}
}

// BenchmarkModel measures one estimation-vector build: the windowed duration
// and wait regressions over a full 64-sample ring.
func BenchmarkModel(b *testing.B) {
	m := benchMonitor(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Model("zoom"); !ok {
			b.Fatal("model must exist")
		}
	}
}

// BenchmarkSnapshotRoundTrip measures a full persistence cycle: snapshot,
// JSON encode, decode, restore — the dietsed -cori-snapshot save/boot path.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	m := benchMonitor(64)
	fresh := NewMonitor(Config{Window: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := m.Snapshot().Encode()
		if err != nil {
			b.Fatal(err)
		}
		snap, err := DecodeSnapshot(data)
		if err != nil {
			b.Fatal(err)
		}
		if err := fresh.Restore(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryPrior measures a warm-start query against a registry fed
// by a 16-SeD cluster — the ChildRegister reply path.
func BenchmarkRegistryPrior(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 16; i++ {
		m := benchMonitor(64)
		model, _ := m.Model("zoom")
		r.Update(fmt.Sprintf("SeD-%02d", i), "grillon", time.Unix(int64(i), 0), []Model{model})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Prior("grillon", "zoom"); !ok {
			b.Fatal("prior must exist")
		}
	}
}
