// Transfer forecasting: the data dimension of the collector. Where cori.go
// answers "how long would this work compute here", this file answers "how
// long until the input bytes arrive" — the missing term of the paper's
// multi-GB GRAFIC/RAMSES movements. A TransferMonitor records measured
// dataman transfers into the same bounded-ring + EWMA + confidence-decay
// machinery the duration models use, keyed by node pair, and predicts the
// seconds a given payload would need between two nodes. The data-aware
// scheduler folds that prediction into the estimation vector
// (scheduler.Estimate.InputTransferSeconds), and the simulator trains the
// same monitor in virtual time.
package cori

import (
	"math"
	"sort"
	"sync"
	"time"
)

// TransferSample is one measured data movement between two nodes.
type TransferSample struct {
	From, To string
	SizeMB   float64
	Duration time.Duration
	At       time.Time // completion time; zero means "now"
}

// PairKey canonicalises a node pair. Links are modelled as symmetric (the
// paper's inter-cluster WAN is), so both directions train one model and
// sparse histories converge twice as fast.
func PairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// TransferModel is the forecaster's snapshot for one node pair.
type TransferModel struct {
	Pair    string
	Samples int // transfers observed (lifetime)
	Window  int // transfers currently in the ring

	// EWMAMBps is the exponentially weighted observed bandwidth.
	EWMAMBps float64
	// LatencySeconds and PerMBSeconds are the least-squares fit
	// duration ≈ LatencySeconds + PerMBSeconds·sizeMB. PerMBSeconds is 0
	// when the window holds no size spread to regress on, in which case
	// EWMAMBps is the whole model.
	LatencySeconds float64
	PerMBSeconds   float64
	// Confidence ∈ (0,1]: 2^(-age/HalfLife), like the duration models.
	Confidence float64
	AgeSeconds float64
}

// TransferSeconds predicts moving sizeMB over this pair's link: the fitted
// latency+slope model when the window had size spread, else sizeMB over the
// EWMA bandwidth. It returns a negative value when the model holds no
// samples.
func (m TransferModel) TransferSeconds(sizeMB float64) float64 {
	if m.Samples == 0 {
		return -1
	}
	if m.PerMBSeconds > 0 {
		if p := m.LatencySeconds + m.PerMBSeconds*sizeMB; p > 0 {
			return p
		}
	}
	if m.EWMAMBps > 0 {
		return sizeMB / m.EWMAMBps
	}
	return -1
}

// transferHistory is the bounded per-pair record.
type transferHistory struct {
	ring     []TransferSample
	next     int
	count    int
	ewmaMBps float64
	lastAt   time.Time
}

// TransferMonitor records measured transfers per node pair and forecasts
// transfer times, mirroring Monitor's machinery and locking contract. It is
// safe for concurrent use and is typically shared platform-wide: transfer
// characteristics belong to links, not to one SeD.
type TransferMonitor struct {
	cfg Config
	now func() time.Time

	mu    sync.Mutex
	pairs map[string]*transferHistory
}

// NewTransferMonitor creates a transfer monitor; the zero Config selects the
// same defaults as the duration monitors (window 64, alpha 0.25, half-life
// 1h, wall clock).
func NewTransferMonitor(cfg Config) *TransferMonitor {
	cfg = cfg.withDefaults()
	return &TransferMonitor{cfg: cfg, now: cfg.Now, pairs: make(map[string]*transferHistory)}
}

// Observe records one measured transfer. Zero-size or non-positive-duration
// samples are ignored — they carry no bandwidth signal.
func (tm *TransferMonitor) Observe(s TransferSample) {
	if s.SizeMB <= 0 || s.Duration <= 0 || s.From == s.To {
		return
	}
	if s.At.IsZero() {
		s.At = tm.now()
	}
	key := PairKey(s.From, s.To)
	mbps := s.SizeMB / s.Duration.Seconds()

	tm.mu.Lock()
	defer tm.mu.Unlock()
	h := tm.pairs[key]
	if h == nil {
		h = &transferHistory{ring: make([]TransferSample, 0, tm.cfg.Window)}
		tm.pairs[key] = h
	}
	if len(h.ring) < tm.cfg.Window {
		h.ring = append(h.ring, s)
	} else {
		h.ring[h.next] = s
	}
	h.next = (h.next + 1) % tm.cfg.Window
	h.count++
	if h.count == 1 {
		h.ewmaMBps = mbps
	} else {
		h.ewmaMBps = tm.cfg.Alpha*mbps + (1-tm.cfg.Alpha)*h.ewmaMBps
	}
	if s.At.After(h.lastAt) {
		h.lastAt = s.At
	}
}

// Model returns the current model for the pair (either direction); ok is
// false when no transfer between the two nodes was ever observed.
func (tm *TransferMonitor) Model(from, to string) (TransferModel, bool) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	h, ok := tm.pairs[PairKey(from, to)]
	if !ok {
		return TransferModel{}, false
	}
	return tm.modelLocked(PairKey(from, to), h), true
}

// modelLocked builds the snapshot: EWMA bandwidth plus a windowed
// least-squares fit duration ≈ latency + perMB·size, guarded against
// degenerate windows exactly like the duration fit.
func (tm *TransferMonitor) modelLocked(key string, h *transferHistory) TransferModel {
	m := TransferModel{Pair: key, Samples: h.count, Window: len(h.ring), EWMAMBps: h.ewmaMBps}
	var n, sx, sy, sxx, sxy float64
	for _, s := range h.ring {
		x, y := s.SizeMB, s.Duration.Seconds()
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	if n >= 2 {
		det := n*sxx - sx*sx
		if det > 1e-9*sxx {
			slope := (n*sxy - sx*sy) / det
			base := (sy - slope*sx) / n
			if slope > 0 {
				m.PerMBSeconds = slope
				if base > 0 {
					m.LatencySeconds = base
				}
			}
		}
	}
	age := tm.now().Sub(h.lastAt).Seconds()
	if age < 0 {
		age = 0
	}
	m.AgeSeconds = age
	m.Confidence = math.Exp2(-age / tm.cfg.HalfLife.Seconds())
	return m
}

// Predict forecasts moving sizeMB from one node to the other. Same-node
// transfers are free with full confidence. ok is false when the pair has no
// history — the caller must fall back to an assumed bandwidth.
func (tm *TransferMonitor) Predict(from, to string, sizeMB float64) (seconds, confidence float64, ok bool) {
	if from == to {
		return 0, 1, true
	}
	m, ok := tm.Model(from, to)
	if !ok {
		return 0, 0, false
	}
	p := m.TransferSeconds(sizeMB)
	if p < 0 {
		return 0, 0, false
	}
	return p, m.Confidence, true
}

// Pairs lists the observed pair keys, sorted.
func (tm *TransferMonitor) Pairs() []string {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	out := make([]string, 0, len(tm.pairs))
	for k := range tm.pairs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
